// Package curation implements the paper's dataset-curation funnel
// (Figure 1, §III-B..D): scraped repositories → repository-license gate →
// Verilog extraction → MinHash/LSH de-duplication (Jaccard 0.85) →
// per-file copyright screening → syntax check → FreeSet.
//
// The funnel is organized around an Extraction: a scrape's Verilog files
// with lazily memoized per-file analyses (shingles + MinHash signature,
// header/body copyright scans, syntax verdict). The analyses live in a
// content-hash keyed vcache store, so one Extraction can feed several
// funnel variants — FreeSet, the VeriGen-style comparison corpus, the
// license-only ablation — without recomputing any per-file work, and
// repeated curation runs over overlapping corpora skip the per-file work
// entirely. Every per-file stage fans out across CPUs, de-duplication
// inserts through a sharded LSH index, and order-sensitive aggregation
// stays sequential, keeping outputs byte-identical to a serial run at any
// worker/shard count and any cache temperature.
package curation

import (
	"errors"
	"strings"
	"time"

	"freehw/internal/dedup"
	"freehw/internal/gitsim"
	"freehw/internal/license"
	"freehw/internal/par"
	"freehw/internal/pipeline"
	"freehw/internal/vcache"
)

// FileRecord is one dataset entry with its provenance.
type FileRecord struct {
	Repo    string
	Path    string
	Content string
	License license.License
}

// Key returns repo-qualified path.
func (f FileRecord) Key() string { return f.Repo + "/" + f.Path }

// StageMask disables individual funnel stages (ablation A1 in DESIGN.md).
// It is sugar for composing a subset of the pipeline's paper stages; see
// Stages.
type StageMask struct {
	SkipLicense   bool
	SkipDedup     bool
	SkipCopyright bool
	SkipSyntax    bool
}

// Stages composes the funnel's pipeline stages for a mask: the paper's
// four stages in Figure 1 order, minus the skipped ones. dopt and shards
// configure the dedup stage (see Options.Shards).
func (m StageMask) Stages(dopt dedup.Options, shards int) []pipeline.Stage {
	var stages []pipeline.Stage
	if !m.SkipLicense {
		stages = append(stages, pipeline.License())
	}
	if !m.SkipDedup {
		stages = append(stages, pipeline.Dedup(dopt, shards))
	}
	if !m.SkipCopyright {
		stages = append(stages, pipeline.Copyright())
	}
	if !m.SkipSyntax {
		stages = append(stages, pipeline.Syntax())
	}
	return stages
}

// Options configures a curation run.
type Options struct {
	Mask  StageMask
	Dedup dedup.Options
	// MaxRepoYear, when nonzero, drops repositories created after this year
	// (used to build the VeriGen-like comparison dataset: its BigQuery
	// snapshot was last updated in 2022).
	MaxRepoYear int
	// Workers bounds per-file concurrency (0 = GOMAXPROCS). Any worker
	// count produces the same Result.
	Workers int
	// Shards is the LSH shard count for the dedup index (0 = one per
	// core). Any shard count produces the same Result.
	Shards int
	// Cache overrides the verdict cache Run extracts through; nil selects
	// the process-wide vcache.Shared store for the dedup options. An
	// Extraction's cache is fixed at Extract time, so RunExtracted cannot
	// honor a different store: it errors when Cache is set to anything but
	// the Extraction's own cache (pass the store to ExtractWithCache
	// instead).
	Cache *vcache.Store
	// NoCache disables cross-run verdict caching entirely (per-extraction
	// memoization still applies). Ignored when Cache is set. RunExtracted
	// errors when NoCache is set but the Extraction was built with a
	// store — the caching decision was made at Extract time.
	NoCache bool
	// CacheBudget bounds the verdict cache's approximate resident bytes
	// (vcache segmented-LRU eviction); 0 leaves the store's current budget
	// untouched, negative removes any bound. Run and RunExtracted both
	// apply it to the resolved store (opt.Cache, the process-wide shared
	// store, or the Extraction's cache), so a long-lived server curating
	// many disjoint corpora stops growing without bound; with caching
	// disabled there is nothing to bound and the field is a no-op. Results
	// are byte-identical at any budget; only cache hit rates change.
	CacheBudget int64
}

// CopyrightFinding records one removed protected file.
type CopyrightFinding struct {
	Key     string
	Reasons []string
	Company string
	// SensitiveHits lists embedded key material found in the body.
	SensitiveHits []string
}

// Result is the funnel outcome: counts for every stage plus the dataset.
type Result struct {
	ReposSeen     int
	ReposLicensed int

	TotalFiles       int // all extracted .v files
	AfterLicense     int
	AfterDedup       int
	CopyrightRemoved int
	SyntaxRemoved    int
	FinalFiles       int

	Bytes int64 // final dataset size

	Files             []FileRecord
	CopyrightFindings []CopyrightFinding
}

// DedupRemovedFraction reports the share dedup removed (paper: 62.5%).
func (r *Result) DedupRemovedFraction() float64 {
	if r.AfterLicense == 0 {
		return 0
	}
	return 1 - float64(r.AfterDedup)/float64(r.AfterLicense)
}

// CopyrightShare reports protected files found relative to the full scrape
// (paper: "nearly 1% of the original dataset").
func (r *Result) CopyrightShare() float64 {
	if r.TotalFiles == 0 {
		return 0
	}
	return float64(r.CopyrightRemoved) / float64(r.TotalFiles)
}

// Texts returns the dataset contents (training corpus form).
func (r *Result) Texts() []string {
	out := make([]string, len(r.Files))
	for i, f := range r.Files {
		out[i] = f.Content
	}
	return out
}

// Keys returns dataset file keys.
func (r *Result) Keys() []string {
	out := make([]string, len(r.Files))
	for i, f := range r.Files {
		out[i] = f.Key()
	}
	return out
}

// IsVerilogPath reports whether a path names a Verilog source file.
func IsVerilogPath(path string) bool {
	return strings.HasSuffix(path, ".v") || strings.HasSuffix(path, ".vh")
}

// repoLicense determines a repository's license from scrape metadata, with
// the LICENSE file text as fallback.
func repoLicense(r *gitsim.RepoData) license.License {
	if l := license.ClassifySPDX(r.Meta.SPDX); l != license.Unknown {
		return l
	}
	for _, f := range r.Files {
		if f.Path == "LICENSE" || f.Path == "LICENSE.md" || f.Path == "COPYING" {
			return license.Classify(f.Content)
		}
	}
	return license.Unknown
}

// ExtractedFile is one scraped Verilog file plus lazily memoized analyses.
// The analyses live in a vcache.Entry keyed by content hash, so they run
// at most once per file content — not per Extraction, funnel variant, or
// worker — and, when the Extraction uses a shared store, at most once per
// process across repeated curation runs.
type ExtractedFile struct {
	rec      FileRecord
	licensed bool
	entry    *vcache.Entry
}

// Record returns the file's dataset record.
func (f *ExtractedFile) Record() FileRecord { return f.rec }

// Licensed reports whether the file's repository passed the license gate.
func (f *ExtractedFile) Licensed() bool { return f.licensed }

// HeaderScan returns the memoized file-level copyright screen of the
// header comment.
func (f *ExtractedFile) HeaderScan() license.ScanResult {
	return f.entry.HeaderScan(f.rec.Content)
}

// BodyHits returns the memoized sensitive-content findings of the body.
func (f *ExtractedFile) BodyHits() []string {
	return f.entry.BodyHits(f.rec.Content)
}

// SyntaxBad reports the memoized syntax-filter verdict.
func (f *ExtractedFile) SyntaxBad() bool {
	return f.entry.SyntaxBad(f.rec.Content)
}

type extractedRepo struct {
	createdAt time.Time
	licensed  bool
	files     []*ExtractedFile
}

// Extraction is a scrape's Verilog files with shared, memoized per-file
// analyses, ready to feed one or more funnel runs.
type Extraction struct {
	repos    []extractedRepo
	dedupOpt dedup.Options
	workers  int
	cache    *vcache.Store
}

// Extract classifies repository licenses and collects Verilog files. dopt
// fixes the de-duplication parameters every subsequent RunExtracted uses
// (all funnel variants must share them for the memoized shingles to be
// valid). Repository-level work fans out across workers. Verdicts are
// cached through the process-wide store for dopt; use ExtractWithCache to
// pick a different store or disable caching.
func Extract(repos []gitsim.RepoData, dopt dedup.Options, workers int) *Extraction {
	return ExtractWithCache(repos, dopt, workers, vcache.Shared(dopt))
}

// ExtractWithCache is Extract with an explicit verdict cache. A nil store
// disables cross-run caching: each file gets a standalone memo entry, so
// behavior matches caching but nothing outlives the Extraction. The store
// must be keyed by dopt (vcache.Shared(dopt) or vcache.NewStore(dopt)); a
// store built for different dedup parameters would replay artifacts that
// are invalid here, so it is replaced with a fresh extraction-local store
// rather than silently corrupting the kept set.
func ExtractWithCache(repos []gitsim.RepoData, dopt dedup.Options, workers int, store *vcache.Store) *Extraction {
	if store != nil && !store.Compatible(dopt) {
		store = vcache.NewStore(dopt)
	}
	ex := &Extraction{
		dedupOpt: dopt,
		workers:  workers,
		cache:    store,
	}
	entryFor := func(content string) *vcache.Entry {
		if store == nil {
			return vcache.NewEntry()
		}
		return store.Entry(content)
	}
	ex.repos = par.Map(workers, len(repos), func(i int) extractedRepo {
		r := &repos[i]
		l := repoLicense(r)
		er := extractedRepo{
			createdAt: r.Meta.CreatedAt,
			licensed:  license.Accepted(l),
		}
		for _, f := range r.Files {
			if !IsVerilogPath(f.Path) {
				continue
			}
			er.files = append(er.files, &ExtractedFile{
				rec:      FileRecord{Repo: r.Meta.FullName, Path: f.Path, Content: f.Content, License: l},
				licensed: er.licensed,
				entry:    entryFor(f.Content),
			})
		}
		return er
	})
	return ex
}

// Cache returns the verdict store the extraction reads through (nil when
// caching is disabled).
func (ex *Extraction) Cache() *vcache.Store { return ex.cache }

// Files returns every extracted Verilog file in scrape order (no year
// filtering), for consumers that need the raw pool — e.g. assembling
// uncurated pre-training slices.
func (ex *Extraction) Files() []*ExtractedFile {
	var out []*ExtractedFile
	for i := range ex.repos {
		out = append(out, ex.repos[i].files...)
	}
	return out
}

// ProtectedFiles returns every extracted file the per-file copyright
// screen flags (protected header or sensitive body content), in scrape
// order, regardless of license gate or dedup outcome — the §III-A
// reference corpus hiding inside an uploaded scrape. Scans fan out across
// the extraction's workers and are memoized in its cache, so a funnel run
// over the same extraction pays nothing extra.
func (ex *Extraction) ProtectedFiles() []*ExtractedFile {
	files := ex.Files()
	flagged := par.Map(ex.workers, len(files), func(i int) bool {
		f := files[i]
		return f.HeaderScan().Protected || len(f.BodyHits()) > 0
	})
	var out []*ExtractedFile
	for i, f := range files {
		if flagged[i] {
			out = append(out, f)
		}
	}
	return out
}

// validateFor rejects option combinations an Extraction cannot honor: the
// verdict cache is fixed at Extract time, so a conflicting Cache/NoCache
// request would otherwise be silently ignored (the pre-PR-5 footgun).
func (opt *Options) validateFor(ex *Extraction) error {
	if opt.Cache != nil && opt.Cache != ex.cache {
		return errors.New("curation: Options.Cache differs from the Extraction's cache, which is fixed at Extract time (pass the store to ExtractWithCache)")
	}
	if opt.NoCache && opt.Cache == nil && ex.cache != nil {
		return errors.New("curation: Options.NoCache set but the Extraction was built with a verdict cache (pass a nil store to ExtractWithCache)")
	}
	return nil
}

// RunExtracted executes the funnel over an Extraction as a pipeline of the
// paper's stages (opt.Mask selecting the subset; see StageMask.Stages).
// The Extraction's dedup parameters are authoritative (opt.Dedup is
// ignored); all other Options apply. Cache/NoCache must agree with the
// Extraction's own cache (fixed at Extract time) or RunExtracted errors
// instead of silently ignoring them; a nonzero CacheBudget is applied to
// the Extraction's cache. Calls may run concurrently over the same
// Extraction.
func RunExtracted(ex *Extraction, opt Options) (*Result, error) {
	if err := opt.validateFor(ex); err != nil {
		return nil, err
	}
	if opt.CacheBudget != 0 && ex.cache != nil {
		ex.cache.SetBudget(max(opt.CacheBudget, 0))
	}
	workers := opt.Workers
	if workers == 0 {
		workers = ex.workers
	}
	res := &Result{}

	// Stage 0: year filter plus repo/file accounting; everything surviving
	// the year filter becomes a pipeline candidate.
	var pool []*ExtractedFile
	for i := range ex.repos {
		r := &ex.repos[i]
		if opt.MaxRepoYear > 0 && !r.createdAt.IsZero() && r.createdAt.Year() > opt.MaxRepoYear {
			continue
		}
		res.ReposSeen++
		if r.licensed {
			res.ReposLicensed++
		}
		pool = append(pool, r.files...)
	}
	res.TotalFiles = len(pool)

	// Stages 1..4 execute as one pipeline; the memo entries are the
	// Extraction's, so every per-content analysis is shared across funnel
	// variants and (with a store) across runs. The dedup stage's own
	// Preparer computes artifacts identical to the Extraction's (same
	// options), so whichever fills an entry first wins harmlessly.
	cands := make([]*pipeline.Candidate, len(pool))
	for i, f := range pool {
		cands[i] = &pipeline.Candidate{
			Key:      f.rec.Key(),
			Content:  f.rec.Content,
			Licensed: f.licensed,
			Entry:    f.entry,
		}
	}
	rep := pipeline.Execute(workers, opt.Mask.Stages(ex.dedupOpt, opt.Shards), cands)

	// Funnel counts derive from the stage timings (candidates in/kept),
	// byte-identical to the pre-pipeline accounting.
	res.AfterLicense = res.TotalFiles
	if t, ok := rep.Timing(pipeline.StageLicense); ok {
		res.AfterLicense = t.Kept
	}
	res.AfterDedup = res.AfterLicense
	if t, ok := rep.Timing(pipeline.StageDedup); ok {
		res.AfterDedup = t.Kept
	}

	var final []FileRecord
	for i, f := range pool {
		v := rep.Verdicts[i]
		switch {
		case v.Accept:
			final = append(final, f.rec)
			res.Bytes += int64(len(f.rec.Content))
		case v.Stage == pipeline.StageCopyright:
			res.CopyrightRemoved++
			scan := f.HeaderScan()
			res.CopyrightFindings = append(res.CopyrightFindings, CopyrightFinding{
				Key: f.rec.Key(), Reasons: scan.Reasons, Company: scan.Company, SensitiveHits: f.BodyHits(),
			})
		case v.Stage == pipeline.StageSyntax:
			res.SyntaxRemoved++
		}
	}
	res.Files = final
	res.FinalFiles = len(final)
	return res, nil
}

// Run executes the funnel over scraped repositories. The verdict cache is
// opt.Cache when set, disabled when opt.NoCache, and the process-wide
// shared store for opt.Dedup otherwise; a nonzero opt.CacheBudget is
// applied to the resolved store before extraction.
func Run(repos []gitsim.RepoData, opt Options) *Result {
	store := opt.Cache
	if store == nil && !opt.NoCache {
		store = vcache.Shared(opt.Dedup)
	}
	if store != nil && opt.CacheBudget != 0 {
		store.SetBudget(max(opt.CacheBudget, 0))
	}
	ex := ExtractWithCache(repos, opt.Dedup, opt.Workers, store)
	// The cache knobs are fully resolved into the Extraction at this point
	// (including ExtractWithCache's documented replacement of a store built
	// for different dedup parameters), so clear them rather than asking
	// RunExtracted to re-validate fields it no longer needs to honor.
	opt.Cache, opt.NoCache, opt.CacheBudget = nil, false, 0
	res, err := RunExtracted(ex, opt)
	if err != nil {
		// Unreachable: the cleared options cannot conflict.
		panic("curation: " + err.Error())
	}
	return res
}

// FreeSetOptions returns the full-funnel paper defaults.
func FreeSetOptions() Options {
	return Options{Dedup: dedup.Options{Threshold: 0.85, Seed: 1}}
}

// VeriGenLikeOptions mirrors a VeriGen-style pipeline for comparison: no
// repository-license granularization, no per-file copyright screen, and a
// corpus frozen at 2022 (the Google BigQuery snapshot VeriGen used has not
// been updated since then) — but with the same dedup and syntax checks.
func VeriGenLikeOptions() Options {
	return Options{
		Mask:        StageMask{SkipLicense: true, SkipCopyright: true},
		Dedup:       dedup.Options{Threshold: 0.85, Seed: 1},
		MaxRepoYear: 2022,
	}
}

// RunFreeSet runs the full funnel with paper defaults.
func RunFreeSet(repos []gitsim.RepoData) *Result {
	return Run(repos, FreeSetOptions())
}

// RunVeriGenLike reproduces a VeriGen-style dataset for comparison (see
// VeriGenLikeOptions).
func RunVeriGenLike(repos []gitsim.RepoData) *Result {
	return Run(repos, VeriGenLikeOptions())
}
