package curation

import (
	"fmt"
	"strings"
)

// Histogram is a log₁₀-binned file-length distribution (Figure 2's axes:
// file length in characters, 10¹..10⁸).
type Histogram struct {
	// Bins[i] counts files with length in [10^(i+1), 10^(i+2)) characters;
	// Bins[0] covers [10,100). Lengths below 10 land in bin 0 as well.
	Bins [7]int
}

// LengthHistogram builds the Figure-2 histogram from dataset texts.
func LengthHistogram(texts []string) Histogram {
	var h Histogram
	for _, t := range texts {
		n := len(t)
		bin := 0
		for threshold := 100; bin < len(h.Bins)-1 && n >= threshold; threshold *= 10 {
			bin++
		}
		h.Bins[bin]++
	}
	return h
}

// BinLabel names a histogram bin.
func BinLabel(i int) string {
	return fmt.Sprintf("10^%d-10^%d", i+1, i+2)
}

// Render draws side-by-side histograms as an ASCII table (the bench that
// regenerates Figure 2 prints this).
func Render(names []string, hs []Histogram) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s", "chars")
	for _, n := range names {
		fmt.Fprintf(&sb, "%12s", n)
	}
	sb.WriteByte('\n')
	for b := 0; b < len(hs[0].Bins); b++ {
		fmt.Fprintf(&sb, "%-12s", BinLabel(b))
		for _, h := range hs {
			fmt.Fprintf(&sb, "%12d", h.Bins[b])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// DatasetRow is one line of Table I.
type DatasetRow struct {
	Name         string
	SizeBytes    int64  // 0 = not reported
	Rows         int    // 0 = not reported
	Structure    string // "Continual Pre-Training" or "Instruction-Tuning"
	Augmented    bool
	OpenSource   bool
	LicenseCheck bool
	Measured     bool // true when produced by this pipeline, not quoted
}

// PriorWorkRows returns the prior-dataset rows exactly as Table I reports
// them (quoted values, not measured by this reproduction).
func PriorWorkRows() []DatasetRow {
	gb := float64(int64(1) << 30)
	mb := float64(int64(1) << 20)
	return []DatasetRow{
		{Name: "VeriGen's Dataset", SizeBytes: int64(1.89 * gb), Rows: 108971, Structure: "Continual Pre-Training", Augmented: false, OpenSource: true, LicenseCheck: false},
		{Name: "RTLCoder", SizeBytes: int64(55.1 * mb), Rows: 27000, Structure: "Instruction-Tuning", Augmented: true, OpenSource: true, LicenseCheck: false},
		{Name: "CodeV", Rows: 165000, Structure: "Instruction-Tuning", Augmented: true, OpenSource: false, LicenseCheck: false},
		{Name: "BetterV", Structure: "Instruction-Tuning", Augmented: true, OpenSource: false, LicenseCheck: true},
		{Name: "CraftRTL", Rows: 80100, Structure: "Instruction-Tuning", Augmented: true, OpenSource: false, LicenseCheck: false},
		{Name: "OriGen", SizeBytes: int64(548 * float64(mb)), Rows: 222075, Structure: "Instruction-Tuning", Augmented: true, OpenSource: true, LicenseCheck: false},
	}
}

// PaperFreeSetRow is Table I's FreeSet line as published (16.5 GB, 222,624
// rows) for side-by-side comparison with the measured, scaled row.
func PaperFreeSetRow() DatasetRow {
	return DatasetRow{
		Name: "FreeSet (paper)", SizeBytes: int64(16.5 * float64(1<<30)), Rows: 222624,
		Structure: "Continual Pre-Training", OpenSource: true, LicenseCheck: true,
	}
}

// FreeSetRow renders this run's measured dataset as a Table I row.
func (r *Result) FreeSetRow(name string) DatasetRow {
	return DatasetRow{
		Name: name, SizeBytes: r.Bytes, Rows: r.FinalFiles,
		Structure: "Continual Pre-Training", OpenSource: true, LicenseCheck: true,
		Measured: true,
	}
}

// RenderTableI formats Table I.
func RenderTableI(rows []DatasetRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s %12s %9s %-24s %-9s %-11s %-13s\n",
		"Dataset", "Size(Disk)", "Rows", "Structure", "Augmented", "OpenSource", "LicenseCheck")
	for _, r := range rows {
		size := "N/A"
		if r.SizeBytes > 0 {
			size = humanBytes(r.SizeBytes)
		}
		rows := "N/A"
		if r.Rows > 0 {
			rows = fmt.Sprintf("%d", r.Rows)
		}
		fmt.Fprintf(&sb, "%-22s %12s %9s %-24s %-9s %-11s %-13s\n",
			r.Name, size, rows, r.Structure, yn(r.Augmented), yn(r.OpenSource), yn(r.LicenseCheck))
	}
	return sb.String()
}

func yn(b bool) string {
	if b {
		return "Yes"
	}
	return "No"
}

func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GB", float64(n)/float64(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(n)/float64(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KB", float64(n)/float64(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

// FunnelReport formats the §IV-A funnel with paper comparison columns.
func (r *Result) FunnelReport(scale float64) string {
	var sb strings.Builder
	paperTotals := []struct {
		name  string
		paper int
		ours  int
	}{
		{"extracted Verilog files", 1300000, r.TotalFiles},
		{"after license filter", 608180, r.AfterLicense},
		{"after LSH de-duplication", 228000, r.AfterDedup},
		{"final dataset", 222624, r.FinalFiles},
	}
	fmt.Fprintf(&sb, "%-28s %10s %12s %12s\n", "stage", "ours", "paper", "paper*scale")
	for _, row := range paperTotals {
		fmt.Fprintf(&sb, "%-28s %10d %12d %12.0f\n", row.name, row.ours, row.paper, float64(row.paper)*scale/100)
	}
	fmt.Fprintf(&sb, "dedup removed: ours %.1f%% vs paper 62.5%%\n", 100*r.DedupRemovedFraction())
	fmt.Fprintf(&sb, "copyright share of scrape: ours %.2f%% vs paper ~1%%\n", 100*r.CopyrightShare())
	fmt.Fprintf(&sb, "copyright-protected files removed: %d (paper: >2,000 at full scale)\n", r.CopyrightRemoved)
	fmt.Fprintf(&sb, "syntax failures removed: %d\n", r.SyntaxRemoved)
	return sb.String()
}
