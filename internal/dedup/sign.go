package dedup

import "freehw/internal/par"

// The MinHash signing kernel. The naive loop (for each shingle, scan all
// permutations) streams the whole signature through the store buffer once
// per shingle. The batched kernel below instead fixes a small block of
// permutations, keeps their running minima in registers, and streams the
// sorted shingle slice once per block: the hot loop touches no memory but
// the shingle stream, which the prefetcher handles, and the per-iteration
// work is four independent multiply-add/min chains the CPU can overlap.
// pprof attributed ~16% of single-core curation to the naive kernel (see
// ROADMAP "Measured performance").

// signBlock is the number of permutations whose running minima stay in
// registers while the shingle slice streams past. Four keeps the working
// set (4 minima + 4 multipliers + 4 offsets + the shingle) within the
// amd64 general-purpose register file.
const signBlock = 4

// parallelSignMin is the shingle count above which Prepare fans a single
// document's signing across workers. Below it the fan-out overhead beats
// the win; typical curated files sit far below, so per-file parallel
// signing only kicks in for pathological megafiles.
const parallelSignMin = 1 << 13

// Sign computes the MinHash signature of a shingle set.
func (m *MinHasher) Sign(shingles ShingleSet) Signature {
	sig := make(Signature, len(m.a))
	m.signRange(sig, shingles, 0, len(m.a))
	return sig
}

// SignParallel computes the same signature as Sign, fanning contiguous
// permutation ranges across at most workers goroutines. Ranges are
// disjoint, so the output is byte-identical to Sign at any worker count.
func (m *MinHasher) SignParallel(shingles ShingleSet, workers int) Signature {
	n := len(m.a)
	w := par.Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		return m.Sign(shingles)
	}
	sig := make(Signature, n)
	par.ForEach(w, w, func(c int) {
		m.signRange(sig, shingles, c*n/w, (c+1)*n/w)
	})
	return sig
}

// signRange fills sig[lo:hi] with the minima of permutations [lo,hi) over
// shingles, in signBlock-wide register blocks.
func (m *MinHasher) signRange(sig Signature, shingles ShingleSet, lo, hi int) {
	i := lo
	for ; i+signBlock <= hi; i += signBlock {
		a0, a1, a2, a3 := m.a[i], m.a[i+1], m.a[i+2], m.a[i+3]
		b0, b1, b2, b3 := m.b[i], m.b[i+1], m.b[i+2], m.b[i+3]
		m0, m1, m2, m3 := ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)
		for _, x := range shingles {
			if h := a0*x + b0; h < m0 {
				m0 = h
			}
			if h := a1*x + b1; h < m1 {
				m1 = h
			}
			if h := a2*x + b2; h < m2 {
				m2 = h
			}
			if h := a3*x + b3; h < m3 {
				m3 = h
			}
		}
		sig[i], sig[i+1], sig[i+2], sig[i+3] = m0, m1, m2, m3
	}
	for ; i < hi; i++ {
		a, b := m.a[i], m.b[i]
		mn := ^uint64(0)
		for _, x := range shingles {
			if h := a*x + b; h < mn {
				mn = h
			}
		}
		sig[i] = mn
	}
}
