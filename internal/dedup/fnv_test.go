package dedup

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// referenceShingles is the original hash/fnv-based implementation, kept here
// as the oracle for the allocation-free rewrite.
func referenceShingles(text string, k int) map[uint64]struct{} {
	if k <= 0 {
		k = 5
	}
	words := strings.Fields(text)
	out := make(map[uint64]struct{}, len(words))
	if len(words) == 0 {
		return out
	}
	if len(words) < k {
		h := fnv.New64a()
		h.Write([]byte(strings.Join(words, " ")))
		out[h.Sum64()] = struct{}{}
		return out
	}
	for i := 0; i+k <= len(words); i++ {
		h := fnv.New64a()
		for j := i; j < i+k; j++ {
			h.Write([]byte(words[j]))
			h.Write([]byte{0})
		}
		out[h.Sum64()] = struct{}{}
	}
	return out
}

// The inlined FNV must produce exactly the hash/fnv values: same shingle
// sets for arbitrary text, both below and above the k-word threshold.
func TestShinglesMatchStdlibFNV(t *testing.T) {
	fn := func(text string, kRaw uint8) bool {
		k := int(kRaw%7) + 1
		got := Shingles(text, k)
		want := referenceShingles(text, k)
		if len(got) != len(want) {
			return false
		}
		for _, h := range got {
			if _, ok := want[h]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestShinglesSortedUnique(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	words := make([]string, 300)
	for i := range words {
		words[i] = fmt.Sprintf("w%02d", rng.Intn(40)) // force repeats
	}
	s := Shingles(strings.Join(words, " "), 3)
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			t.Fatalf("not sorted/unique at %d: %d, %d", i, s[i-1], s[i])
		}
	}
	if !s.Contains(s[0]) || s.Contains(s[len(s)-1]+1) {
		t.Fatal("Contains broken")
	}
}

// A concurrent-prep + sequential-insert pipeline must behave exactly like
// direct Add calls.
func TestAddPreparedMatchesAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	texts := make([]string, 80)
	for i := range texts {
		texts[i] = strings.Join(randWords(rng, 120), " ")
	}
	texts[20] = texts[4]
	texts[70] = texts[33]

	opt := Options{Seed: 5, Threshold: 0.85}
	direct := NewIndex(opt)
	staged := NewIndex(opt)
	prep := staged.Preparer()
	for i, text := range texts {
		key := fmt.Sprintf("d%d", i)
		a := direct.Add(key, text)
		b := staged.AddPrepared(key, prep.Prepare(text))
		if a != b {
			t.Fatalf("doc %d: direct=%+v staged=%+v", i, a, b)
		}
	}
	ka, kb := direct.Keys(), staged.Keys()
	if len(ka) != len(kb) {
		t.Fatalf("kept %d vs %d", len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("order diverged at %d", i)
		}
	}
}

func benchText() string {
	rng := rand.New(rand.NewSource(2))
	return strings.Join(randWords(rng, 400), " ")
}

func BenchmarkShingles(b *testing.B) {
	text := benchText()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Shingles(text, 5)
	}
}

func BenchmarkPrepare(b *testing.B) {
	text := benchText()
	p := NewPreparer(Options{Seed: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Prepare(text)
	}
}
