package dedup

import (
	"sync"

	"freehw/internal/par"
)

// ShardedIndex is a banded LSH index whose insertion hot path scales with
// cores while staying byte-identical to the sequential Index's kept set at
// any shard or worker count.
//
// Band buckets are striped across N shards (band b lives in shard
// b % nshards), each guarded by its own lock. Documents are offered in
// batches; each batch runs four phases:
//
//  1. probe — every batch document probes the committed index in parallel
//     (read-only: no inserts happen while probing);
//  2. group — batch-local band buckets are built shard-parallel, so each
//     document learns which earlier batch documents share a band with it;
//  3. verify+sweep — exact Jaccard for every in-batch candidate pair runs
//     in parallel, then a cheap sequential sweep decides kept/duplicate in
//     offer order, honoring the sequential rule that only *kept* documents
//     are dedup candidates (a duplicate of a duplicate is kept when it does
//     not match any kept document);
//  4. commit — kept documents enter the shard buckets, shard-parallel, in
//     offer order, so bucket contents are independent of scheduling.
//
// The kept set (every AddResult.Unique bit) is provably identical to
// feeding the same sequence through Index.AddPrepared. DupOfKey and
// Similarity report the best-matching kept document; when a committed and
// an in-batch document tie exactly, the committed one wins, which is the
// only place results can differ from the sequential Index (the sequential
// tie-break is pure encounter order).
//
// Like Index, a ShardedIndex is NOT safe for concurrent external use: all
// parallelism is internal to an Add/AddAll call, which must come from one
// goroutine at a time. The per-shard locks guard bucket mutation in the
// commit phase (see addBatch), not external callers.
type ShardedIndex struct {
	prep      *Preparer
	threshold float64
	nshards   int
	batch     int
	workers   int

	locks   []sync.Mutex
	buckets []map[uint64][]int // per band: band-hash -> kept doc ids, ascending
	docs    []doc
}

// defaultBatch bounds the per-wave candidate-pair graph: small enough that
// duplicate-heavy corpora resolve incrementally (later waves probe only
// kept documents), large enough to amortize the phase barriers.
const defaultBatch = 256

// NewShardedIndex builds an empty sharded LSH index. shards <= 0 selects
// one shard per core (capped at the band count); workers bounds the
// internal fan-out (0 = GOMAXPROCS).
func NewShardedIndex(opt Options, shards, workers int) *ShardedIndex {
	opt = opt.normalize()
	if shards <= 0 {
		shards = par.Workers(0)
	}
	if shards > opt.Bands {
		shards = opt.Bands
	}
	x := &ShardedIndex{
		prep:      NewPreparerWorkers(opt, workers),
		threshold: opt.Threshold,
		nshards:   shards,
		batch:     defaultBatch,
		workers:   par.Workers(workers),
		locks:     make([]sync.Mutex, shards),
		buckets:   make([]map[uint64][]int, opt.Bands),
	}
	for i := range x.buckets {
		x.buckets[i] = map[uint64][]int{}
	}
	return x
}

// Threshold returns the Jaccard duplicate threshold.
func (x *ShardedIndex) Threshold() float64 { return x.threshold }

// Len returns the number of retained (unique) documents.
func (x *ShardedIndex) Len() int { return len(x.docs) }

// Shards returns the shard count (diagnostics).
func (x *ShardedIndex) Shards() int { return x.nshards }

// Preparer returns a Preparer compatible with this index.
func (x *ShardedIndex) Preparer() *Preparer { return x.prep }

// Keys returns the retained document keys in offer order.
func (x *ShardedIndex) Keys() []string {
	out := make([]string, len(x.docs))
	for i, d := range x.docs {
		out[i] = d.key
	}
	return out
}

// Add offers a single document (a batch of one).
func (x *ShardedIndex) Add(key, text string) AddResult {
	return x.AddPrepared(key, x.prep.Prepare(text))
}

// AddPrepared offers a single prepared document (a batch of one).
func (x *ShardedIndex) AddPrepared(key string, p Prepared) AddResult {
	out := make([]AddResult, 1)
	x.addBatch([]string{key}, []Prepared{p}, out)
	return out[0]
}

// AddAll offers documents in order, internally batched into waves. The
// result at index i reports document i's fate; the kept set matches a
// sequential Index fed the same sequence.
func (x *ShardedIndex) AddAll(keys []string, preps []Prepared) []AddResult {
	out := make([]AddResult, len(keys))
	for lo := 0; lo < len(keys); lo += x.batch {
		hi := min(lo+x.batch, len(keys))
		x.addBatch(keys[lo:hi], preps[lo:hi], out[lo:hi])
	}
	return out
}

// probe scans the committed buckets for p's best-matching kept document,
// in the sequential Index's encounter order (bands ascending, then bucket
// insertion order) so equal-similarity candidates resolve identically.
func (x *ShardedIndex) probe(p Prepared) (bestSim float64, bestID int) {
	seen := map[int]struct{}{}
	bestID = -1
	for b := range x.buckets {
		for _, id := range x.buckets[b][p.Bands[b]] {
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			sim := Jaccard(p.Shingles, x.docs[id].shingles)
			if sim > bestSim {
				bestSim, bestID = sim, id
			}
		}
	}
	return bestSim, bestID
}

type preHit struct {
	sim float64
	id  int
}

// addOne is the sequential insertion path: exactly Index.AddPrepared over
// the shard-striped buckets. Used when the resolved worker count is 1,
// where the wave phases' batch bookkeeping would be pure overhead.
func (x *ShardedIndex) addOne(key string, p Prepared) AddResult {
	sim, id := x.probe(p)
	if id >= 0 && sim >= x.threshold {
		return AddResult{Unique: false, DupOfKey: x.docs[id].key, Similarity: sim}
	}
	docID := len(x.docs)
	x.docs = append(x.docs, doc{id: docID, key: key, shingles: p.Shingles, sig: p.Sig})
	for b := range x.buckets {
		x.buckets[b][p.Bands[b]] = append(x.buckets[b][p.Bands[b]], docID)
	}
	return AddResult{Unique: true}
}

func (x *ShardedIndex) addBatch(keys []string, preps []Prepared, out []AddResult) {
	n := len(keys)
	if n == 0 {
		return
	}
	if x.workers <= 1 || n == 1 {
		for i := range keys {
			out[i] = x.addOne(keys[i], preps[i])
		}
		return
	}

	// Phase 1: probe the committed index, read-only and parallel.
	pre := par.Map(x.workers, n, func(i int) preHit {
		sim, id := x.probe(preps[i])
		return preHit{sim: sim, id: id}
	})

	// Phase 2: batch-local band buckets, built shard-parallel. Bucket
	// entries are ascending batch offsets by construction.
	local := make([]map[uint64][]int, len(x.buckets))
	par.ForEach(x.workers, x.nshards, func(s int) {
		for b := s; b < len(x.buckets); b += x.nshards {
			m := map[uint64][]int{}
			for i := 0; i < n; i++ {
				h := preps[i].Bands[b]
				m[h] = append(m[h], i)
			}
			local[b] = m
		}
	})

	// Per-document in-batch candidates: earlier batch documents sharing a
	// band, in band-major first-encounter order (the sequential probe
	// order), with exact Jaccard computed in parallel.
	type cand struct {
		j   int
		sim float64
	}
	cands := par.Map(x.workers, n, func(i int) []cand {
		var list []cand
		var seen map[int]bool
		for b := range local {
			for _, j := range local[b][preps[i].Bands[b]] {
				if j >= i {
					break // ascending offsets: nothing earlier remains
				}
				if seen == nil {
					seen = map[int]bool{}
				}
				if seen[j] {
					continue
				}
				seen[j] = true
				list = append(list, cand{j: j, sim: Jaccard(preps[i].Shingles, preps[j].Shingles)})
			}
		}
		return list
	})

	// Phase 3: sequential sweep in offer order. Only kept documents count
	// as candidates, exactly as when each would have been inserted one by
	// one into a sequential index.
	firstKept := len(x.docs)
	keptID := make([]int, n) // batch offset -> committed doc id, -1 if dup
	for i := 0; i < n; i++ {
		bestSim, bestKey, found := 0.0, "", false
		if pre[i].id >= 0 {
			bestSim, bestKey, found = pre[i].sim, x.docs[pre[i].id].key, true
		}
		for _, c := range cands[i] {
			if keptID[c.j] < 0 {
				continue
			}
			if c.sim > bestSim {
				bestSim, bestKey, found = c.sim, keys[c.j], true
			}
		}
		if found && bestSim >= x.threshold {
			keptID[i] = -1
			out[i] = AddResult{Unique: false, DupOfKey: bestKey, Similarity: bestSim}
			continue
		}
		id := len(x.docs)
		x.docs = append(x.docs, doc{id: id, key: keys[i], shingles: preps[i].Shingles, sig: preps[i].Sig})
		keptID[i] = id
		out[i] = AddResult{Unique: true}
	}

	// Phase 4: commit kept documents to the shard buckets. Each shard's
	// goroutine walks the batch in offer order, so bucket contents are
	// ascending doc ids regardless of shard or worker count. par.ForEach
	// hands each shard to exactly one goroutine, so the shard locks are
	// uncontended today; they pin down shard ownership for any future
	// scheduler that overlaps commit with other shard-touching work.
	if len(x.docs) == firstKept {
		return
	}
	par.ForEach(x.workers, x.nshards, func(s int) {
		x.locks[s].Lock()
		defer x.locks[s].Unlock()
		for b := s; b < len(x.buckets); b += x.nshards {
			for i := 0; i < n; i++ {
				if keptID[i] < 0 {
					continue
				}
				h := preps[i].Bands[b]
				x.buckets[b][h] = append(x.buckets[b][h], keptID[i])
			}
		}
	})
}

// TopBucketSizes reports the largest LSH bucket sizes (diagnostics),
// matching Index.TopBucketSizes.
func (x *ShardedIndex) TopBucketSizes(n int) []int {
	idx := &Index{buckets: x.buckets}
	return idx.TopBucketSizes(n)
}
