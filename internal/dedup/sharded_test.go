package dedup

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// corpusWithDups builds a synthetic corpus with exact duplicates, near
// duplicates (including duplicates-of-duplicates, which exercise the
// "only kept documents are candidates" rule), and unique documents.
func corpusWithDups(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	var out []string
	fresh := func() []string {
		words := make([]string, 120)
		for i := range words {
			words[i] = fmt.Sprintf("w%04d", rng.Intn(3000))
		}
		return words
	}
	var bases [][]string
	for len(out) < n {
		switch {
		case len(bases) == 0 || rng.Float64() < 0.4:
			b := fresh()
			bases = append(bases, b)
			out = append(out, strings.Join(b, " "))
		case rng.Float64() < 0.5:
			// Exact duplicate of a prior document.
			out = append(out, out[rng.Intn(len(out))])
		default:
			// Near duplicate of a prior base, mutation rate around the
			// threshold so some land just above and some just below.
			b := bases[rng.Intn(len(bases))]
			m := make([]string, len(b))
			copy(m, b)
			for k := 0; k < 1+rng.Intn(8); k++ {
				m[rng.Intn(len(m))] = fmt.Sprintf("mut%05d", rng.Intn(99999))
			}
			bases = append(bases, m)
			out = append(out, strings.Join(m, " "))
		}
	}
	return out
}

// The sharded index must retain exactly the documents the sequential Index
// retains, in the same order, at any shard/worker/batch configuration.
func TestShardedIndexMatchesSequential(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		texts := corpusWithDups(seed, 700)
		opt := Options{Seed: 1, Threshold: 0.85}

		seq := NewIndex(opt)
		prep := seq.Preparer()
		keys := make([]string, len(texts))
		preps := make([]Prepared, len(texts))
		for i, tx := range texts {
			keys[i] = fmt.Sprintf("doc%04d", i)
			preps[i] = prep.Prepare(tx)
		}
		seqResults := make([]AddResult, len(texts))
		for i := range texts {
			seqResults[i] = seq.AddPrepared(keys[i], preps[i])
		}

		for _, cfg := range []struct{ shards, workers int }{
			{1, 1}, {1, 8}, {4, 1}, {4, 4}, {32, 8}, {100, 3},
		} {
			sh := NewShardedIndex(opt, cfg.shards, cfg.workers)
			got := sh.AddAll(keys, preps)
			for i := range got {
				if got[i].Unique != seqResults[i].Unique {
					t.Fatalf("seed %d shards=%d workers=%d: doc %d unique=%v, sequential says %v",
						seed, cfg.shards, cfg.workers, i, got[i].Unique, seqResults[i].Unique)
				}
			}
			if !reflect.DeepEqual(sh.Keys(), seq.Keys()) {
				t.Fatalf("seed %d shards=%d workers=%d: kept keys diverged", seed, cfg.shards, cfg.workers)
			}
			if sh.Len() != seq.Len() {
				t.Fatalf("seed %d: Len %d != %d", seed, sh.Len(), seq.Len())
			}
		}
	}
}

// Results across shard counts must be deterministic. The wave path
// (workers>1) is one algorithm at any shard/worker count, so its full
// AddResults are compared exactly; the workers=1 sequential fast path
// shares everything but the committed-wins-ties DupOfKey rule (see the
// type comment), so against it only the guaranteed invariants — Unique,
// Similarity, and the kept keys — are compared.
func TestShardedIndexShardCountDeterminism(t *testing.T) {
	texts := corpusWithDups(9, 500)
	opt := Options{Seed: 2}
	prep := NewPreparer(opt)
	keys := make([]string, len(texts))
	preps := make([]Prepared, len(texts))
	for i, tx := range texts {
		keys[i] = fmt.Sprintf("d%d", i)
		preps[i] = prep.Prepare(tx)
	}
	serialIdx := NewShardedIndex(opt, 1, 1)
	serial := serialIdx.AddAll(keys, preps)
	base := NewShardedIndex(opt, 2, 2).AddAll(keys, preps)
	for _, cfg := range []struct{ shards, workers int }{{8, 8}, {32, 5}} {
		got := NewShardedIndex(opt, cfg.shards, cfg.workers).AddAll(keys, preps)
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("shards=%d workers=%d: AddResults diverged from shards=2", cfg.shards, cfg.workers)
		}
	}
	waveIdx := NewShardedIndex(opt, 8, 8)
	wave := waveIdx.AddAll(keys, preps)
	for i := range serial {
		if serial[i].Unique != wave[i].Unique || serial[i].Similarity != wave[i].Similarity {
			t.Fatalf("doc %d: serial path %+v vs wave path %+v", i, serial[i], wave[i])
		}
	}
	if !reflect.DeepEqual(serialIdx.Keys(), waveIdx.Keys()) {
		t.Fatal("kept keys diverged between serial and wave paths")
	}
}

// Single-document adds through the batch machinery must behave like the
// sequential Index on the dedup package's own canonical cases.
func TestShardedIndexSingleAdds(t *testing.T) {
	idx := NewShardedIndex(Options{Seed: 1}, 4, 2)
	text := "module m (input a, output y); assign y = ~a; endmodule " +
		strings.Repeat("wire pad_signal_for_shingles; ", 20)
	if r := idx.Add("first", text); !r.Unique {
		t.Fatal("first doc must be unique")
	}
	r := idx.Add("second", text)
	if r.Unique || r.DupOfKey != "first" || r.Similarity != 1 {
		t.Fatalf("dup result: %+v", r)
	}
	if r := idx.Add("third", "entirely different words one two three four five six seven eight nine ten"); !r.Unique {
		t.Fatalf("unrelated doc flagged dup: %+v", r)
	}
	if got := idx.Keys(); !reflect.DeepEqual(got, []string{"first", "third"}) {
		t.Fatalf("keys: %v", got)
	}
}

// A batch consisting only of duplicates of committed documents must not
// grow the index (phase 4 early-out path).
func TestShardedIndexAllDupBatch(t *testing.T) {
	opt := Options{Seed: 1}
	idx := NewShardedIndex(opt, 2, 2)
	prep := idx.Preparer()
	text := strings.Repeat("some padded verilog-ish words here ", 30)
	idx.AddPrepared("orig", prep.Prepare(text))
	keys := []string{"a", "b", "c"}
	preps := []Prepared{prep.Prepare(text), prep.Prepare(text), prep.Prepare(text)}
	for i, r := range idx.AddAll(keys, preps) {
		if r.Unique || r.DupOfKey != "orig" {
			t.Fatalf("doc %d: %+v", i, r)
		}
	}
	if idx.Len() != 1 {
		t.Fatalf("index grew to %d", idx.Len())
	}
}

func benchPrepared(b *testing.B, n int) ([]string, []Prepared, Options) {
	b.Helper()
	texts := corpusWithDups(42, n)
	opt := Options{Seed: 1}
	prep := NewPreparer(opt)
	keys := make([]string, len(texts))
	preps := make([]Prepared, len(texts))
	for i, tx := range texts {
		keys[i] = fmt.Sprintf("doc%d", i)
		preps[i] = prep.Prepare(tx)
	}
	return keys, preps, opt
}

func BenchmarkSequentialInsert(b *testing.B) {
	keys, preps, opt := benchPrepared(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := NewIndex(opt)
		for j := range keys {
			idx.AddPrepared(keys[j], preps[j])
		}
	}
}

func BenchmarkShardedInsert(b *testing.B) {
	keys, preps, opt := benchPrepared(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := NewShardedIndex(opt, 0, 0)
		idx.AddAll(keys, preps)
	}
}
