package dedup

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestJaccardIdentical(t *testing.T) {
	a := Shingles("module counter input clk output q endmodule", 3)
	if got := Jaccard(a, a); got != 1 {
		t.Fatalf("self Jaccard = %f", got)
	}
}

func TestJaccardDisjoint(t *testing.T) {
	a := Shingles("alpha beta gamma delta epsilon zeta", 3)
	b := Shingles("one two three four five six", 3)
	if got := Jaccard(a, b); got != 0 {
		t.Fatalf("disjoint Jaccard = %f", got)
	}
}

func TestJaccardEmpty(t *testing.T) {
	e := Shingles("", 3)
	a := Shingles("x y z w", 3)
	if got := Jaccard(e, e); got != 1 {
		t.Fatalf("empty-empty = %f", got)
	}
	if got := Jaccard(e, a); got != 0 {
		t.Fatalf("empty-nonempty = %f", got)
	}
}

func randWords(rng *rand.Rand, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("w%03d", rng.Intn(500))
	}
	return out
}

// MinHash signature similarity should estimate Jaccard within tolerance.
func TestMinHashEstimatesJaccard(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewMinHasher(256, 42)
	for trial := 0; trial < 20; trial++ {
		base := randWords(rng, 300)
		mutated := make([]string, len(base))
		copy(mutated, base)
		// Mutate a fraction of words.
		for i := 0; i < trial*10; i++ {
			mutated[rng.Intn(len(mutated))] = fmt.Sprintf("mut%04d", rng.Intn(10000))
		}
		ta, tb := strings.Join(base, " "), strings.Join(mutated, " ")
		sa, sb := Shingles(ta, 5), Shingles(tb, 5)
		exact := Jaccard(sa, sb)
		est := SigSimilarity(h.Sign(sa), h.Sign(sb))
		if diff := est - exact; diff > 0.12 || diff < -0.12 {
			t.Errorf("trial %d: exact=%.3f est=%.3f", trial, exact, est)
		}
	}
}

func TestIndexExactDuplicates(t *testing.T) {
	idx := NewIndex(Options{Seed: 1})
	text := "module m (input a, output y); assign y = ~a; endmodule " +
		strings.Repeat("wire pad_signal_for_shingles; ", 20)
	r1 := idx.Add("first", text)
	if !r1.Unique {
		t.Fatal("first doc must be unique")
	}
	r2 := idx.Add("second", text)
	if r2.Unique {
		t.Fatal("exact duplicate not caught")
	}
	if r2.DupOfKey != "first" || r2.Similarity != 1 {
		t.Fatalf("dup result: %+v", r2)
	}
}

func TestIndexNearDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := randWords(rng, 400)
	idx := NewIndex(Options{Seed: 1, Threshold: 0.85})
	idx.Add("orig", strings.Join(base, " "))

	// ~2% mutation: should still be a duplicate at 0.85.
	near := make([]string, len(base))
	copy(near, base)
	for i := 0; i < 4; i++ {
		near[rng.Intn(len(near))] = "changed"
	}
	if r := idx.Add("near", strings.Join(near, " ")); r.Unique {
		t.Fatalf("near duplicate not caught (sim=%.3f)", idx.PairSimilarity(strings.Join(base, " "), strings.Join(near, " ")))
	}

	// Heavy mutation: must be unique.
	far := randWords(rng, 400)
	if r := idx.Add("far", strings.Join(far, " ")); !r.Unique {
		t.Fatalf("unrelated doc flagged as dup of %s (%.3f)", r.DupOfKey, r.Similarity)
	}
}

func TestDedupOrderPreserved(t *testing.T) {
	texts := []string{
		"aaa bbb ccc ddd eee fff ggg hhh",
		"one two three four five six seven eight",
		"aaa bbb ccc ddd eee fff ggg hhh", // dup of 0
		"nine ten eleven twelve thirteen fourteen fifteen sixteen",
	}
	kept := Dedup(texts, Options{Seed: 9})
	want := []int{0, 1, 3}
	if len(kept) != len(want) {
		t.Fatalf("kept %v", kept)
	}
	for i := range want {
		if kept[i] != want[i] {
			t.Fatalf("kept %v, want %v", kept, want)
		}
	}
}

func TestIndexDeterminism(t *testing.T) {
	texts := make([]string, 50)
	rng := rand.New(rand.NewSource(11))
	for i := range texts {
		texts[i] = strings.Join(randWords(rng, 100), " ")
	}
	// Inject duplicates.
	texts[10] = texts[3]
	texts[40] = texts[22]
	a := Dedup(texts, Options{Seed: 5})
	b := Dedup(texts, Options{Seed: 5})
	if len(a) != len(b) {
		t.Fatalf("non-deterministic: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d", i)
		}
	}
	if len(a) != 48 {
		t.Fatalf("want 48 unique, got %d", len(a))
	}
}

// Property: Jaccard is symmetric and bounded in [0,1].
func TestJaccardProperties(t *testing.T) {
	fn := func(a, b string) bool {
		sa, sb := Shingles(a, 3), Shingles(b, 3)
		j1, j2 := Jaccard(sa, sb), Jaccard(sb, sa)
		return j1 == j2 && j1 >= 0 && j1 <= 1
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: a document is always a duplicate of itself once added.
func TestIndexSelfDuplicateProperty(t *testing.T) {
	fn := func(words []string) bool {
		if len(words) == 0 {
			return true
		}
		text := strings.Join(words, " ")
		idx := NewIndex(Options{Seed: 2})
		idx.Add("a", text)
		r := idx.Add("b", text)
		return !r.Unique
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIndexAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	texts := make([]string, 256)
	for i := range texts {
		texts[i] = strings.Join(randWords(rng, 200), " ")
	}
	b.ResetTimer()
	idx := NewIndex(Options{Seed: 1})
	for i := 0; i < b.N; i++ {
		idx.Add("k", texts[i%len(texts)])
	}
}
