package dedup

import (
	"math/rand"
	"testing"
)

// naiveSign is the pre-batching reference kernel: for each shingle, scan
// every permutation. The batched kernel must reproduce it bit for bit.
func naiveSign(m *MinHasher, shingles ShingleSet) Signature {
	sig := make(Signature, len(m.a))
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	for _, x := range shingles {
		for i := range m.a {
			h := m.a[i]*x + m.b[i]
			if h < sig[i] {
				sig[i] = h
			}
		}
	}
	return sig
}

func randShingles(rng *rand.Rand, n int) ShingleSet {
	out := make(ShingleSet, n)
	for i := range out {
		out[i] = rng.Uint64()
	}
	return out
}

func TestSignMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, perms := range []int{1, 3, 4, 7, 32, 128, 130} {
		m := NewMinHasher(perms, 99)
		for _, sz := range []int{0, 1, 2, 17, 500} {
			sh := randShingles(rng, sz)
			want := naiveSign(m, sh)
			got := m.Sign(sh)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("perms=%d size=%d: Sign[%d] = %#x, want %#x", perms, sz, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSignParallelMatchesSign(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewMinHasher(128, 42)
	for _, sz := range []int{0, 3, 1000, parallelSignMin + 1} {
		sh := randShingles(rng, sz)
		want := m.Sign(sh)
		for _, workers := range []int{1, 2, 3, 8, 200} {
			got := m.SignParallel(sh, workers)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("size=%d workers=%d: SignParallel[%d] = %#x, want %#x", sz, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// Large documents must take the parallel-signing path inside Prepare and
// still produce identical artifacts to a serial Preparer.
func TestPreparerWorkersIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	words := make([]byte, 0, 1<<18)
	for i := 0; i < parallelSignMin+500; i++ {
		words = append(words, 'a'+byte(rng.Intn(26)), 'a'+byte(rng.Intn(26)), ' ')
	}
	text := string(words)
	opt := Options{Seed: 3}
	serial := NewPreparer(opt).Prepare(text)
	parallel := NewPreparerWorkers(opt, 8).Prepare(text)
	if len(serial.Sig) != len(parallel.Sig) {
		t.Fatal("signature length diverged")
	}
	for i := range serial.Sig {
		if serial.Sig[i] != parallel.Sig[i] {
			t.Fatalf("sig[%d] diverged", i)
		}
	}
	for i := range serial.Bands {
		if serial.Bands[i] != parallel.Bands[i] {
			t.Fatalf("band[%d] diverged", i)
		}
	}
}

func BenchmarkMinHashSign(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	m := NewMinHasher(128, 1)
	sh := randShingles(rng, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Sign(sh)
	}
}

func BenchmarkMinHashSignNaive(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	m := NewMinHasher(128, 1)
	sh := randShingles(rng, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		naiveSign(m, sh)
	}
}
