// Package dedup implements the de-duplication stage of the FreeSet curation
// pipeline: token shingling, MinHash signatures, banded locality-sensitive
// hashing, and exact Jaccard verification, following the method VeriGen
// describes and the paper adopts (§III-D: MinHash + Jaccard at threshold
// 0.85, LSH for efficient candidate lookup).
package dedup

import (
	"slices"
	"sort"
	"strings"

	"freehw/internal/par"
)

// FNV-1a 64-bit parameters. Shingle and band hashing inline the algorithm
// instead of allocating a hash/fnv object per shingle; the values produced
// are identical to hash/fnv's (dedup_test.go proves it against the stdlib).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// ShingleSet is a document's shingle hashes as a sorted, duplicate-free
// slice. The slice form keeps Jaccard a linear merge and MinHash signing a
// sequential scan, with none of the per-document map allocations the
// original map[uint64]struct{} representation paid.
type ShingleSet []uint64

// Contains reports set membership (binary search).
func (s ShingleSet) Contains(h uint64) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= h })
	return i < len(s) && s[i] == h
}

// Shingles splits text into k-token shingles and returns their 64-bit FNV
// hashes as a sorted set. Tokens are whitespace-separated words, which is
// robust to reformatting while staying cheap.
func Shingles(text string, k int) ShingleSet {
	if k <= 0 {
		k = 5
	}
	words := strings.Fields(text)
	if len(words) == 0 {
		return ShingleSet{}
	}
	if len(words) < k {
		// One shingle over the words joined by single spaces.
		h := uint64(fnvOffset64)
		for i, w := range words {
			if i > 0 {
				h ^= ' '
				h *= fnvPrime64
			}
			h = fnvString(h, w)
		}
		return ShingleSet{h}
	}
	out := make(ShingleSet, 0, len(words)-k+1)
	// Four independent window chains per iteration: FNV is a serial
	// multiply chain, so a single window leaves the multiplier idle most
	// cycles. Interleaving four windows lets the CPU overlap the chains
	// (the same register-blocking idiom as the batched MinHash kernel in
	// sign.go) while producing bit-identical hashes — the stdlib-FNV
	// oracle test pins that.
	i := 0
	for ; i+3+k <= len(words); i += 4 {
		h0 := uint64(fnvOffset64)
		h1 := uint64(fnvOffset64)
		h2 := uint64(fnvOffset64)
		h3 := uint64(fnvOffset64)
		for j := 0; j < k; j++ {
			// NUL separator between tokens, matching the original encoding
			// (xor 0 is the identity, leaving just the multiply).
			h0 = fnvString(h0, words[i+j]) * fnvPrime64
			h1 = fnvString(h1, words[i+1+j]) * fnvPrime64
			h2 = fnvString(h2, words[i+2+j]) * fnvPrime64
			h3 = fnvString(h3, words[i+3+j]) * fnvPrime64
		}
		out = append(out, h0, h1, h2, h3)
	}
	for ; i+k <= len(words); i++ {
		h := uint64(fnvOffset64)
		for j := i; j < i+k; j++ {
			h = fnvString(h, words[j])
			h *= fnvPrime64
		}
		out = append(out, h)
	}
	slices.Sort(out)
	return slices.Compact(out)
}

// Jaccard computes |a∩b| / |a∪b| over sorted shingle sets with a linear
// merge.
func Jaccard(a, b ShingleSet) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// Signature is a MinHash signature: one minimum per permutation.
type Signature []uint64

// MinHasher derives MinHash signatures with n hash permutations of the form
// h_i(x) = a_i*x + b_i (odd multipliers, 64-bit wraparound).
type MinHasher struct {
	a []uint64
	b []uint64
}

// NewMinHasher builds a hasher with n permutations from a seed.
func NewMinHasher(n int, seed uint64) *MinHasher {
	if n <= 0 {
		n = 128
	}
	m := &MinHasher{a: make([]uint64, n), b: make([]uint64, n)}
	s := splitmix(seed)
	for i := 0; i < n; i++ {
		m.a[i] = s.next() | 1 // odd multiplier: bijection mod 2^64
		m.b[i] = s.next()
	}
	return m
}

// N returns the signature length.
func (m *MinHasher) N() int { return len(m.a) }

// Sign is implemented in sign.go (register-blocked batched kernel).

// SigSimilarity estimates Jaccard similarity from two signatures.
func SigSimilarity(a, b Signature) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	eq := 0
	for i := range a {
		if a[i] == b[i] {
			eq++
		}
	}
	return float64(eq) / float64(len(a))
}

// splitmix is SplitMix64, used to derive permutation parameters.
type splitmix uint64

func (s *splitmix) next() uint64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Normalized returns opt with defaults filled in — the form under which two
// Options values are comparable (vcache keys its shared stores by it).
func (opt Options) Normalized() Options { return opt.normalize() }

// normalize fills in Options defaults; Preparer and Index must agree on the
// resolved values, so both construct through this.
func (opt Options) normalize() Options {
	if opt.Permutations <= 0 {
		opt.Permutations = 128
	}
	if opt.Bands <= 0 {
		opt.Bands = 32
	}
	if opt.Permutations%opt.Bands != 0 {
		opt.Permutations = opt.Bands * ((opt.Permutations + opt.Bands - 1) / opt.Bands)
	}
	if opt.Threshold == 0 {
		opt.Threshold = 0.85
	}
	if opt.ShingleK <= 0 {
		opt.ShingleK = 5
	}
	return opt
}

// Prepared is the per-document precomputation an Index consumes: shingles,
// MinHash signature, and per-band LSH hashes. Preparing documents is
// side-effect free, so a batch can be prepared concurrently and fed to a
// sequential Index insert that preserves first-seen-kept order.
type Prepared struct {
	Shingles ShingleSet
	Sig      Signature
	Bands    []uint64
}

// Preparer computes Prepared documents for a given Options. A Preparer and
// an Index built from the same Options are compatible.
type Preparer struct {
	hasher   *MinHasher
	bands    int
	rows     int
	shingleK int
	workers  int
}

// NewPreparer builds a Preparer for opt.
func NewPreparer(opt Options) *Preparer {
	return NewPreparerWorkers(opt, 1)
}

// NewPreparerWorkers builds a Preparer that may fan the signing of very
// large documents (>= parallelSignMin shingles) across workers (<= 0
// resolves to GOMAXPROCS, matching every other worker knob). Output is
// byte-identical to NewPreparer's at any worker count.
func NewPreparerWorkers(opt Options, workers int) *Preparer {
	opt = opt.normalize()
	return &Preparer{
		hasher:   NewMinHasher(opt.Permutations, opt.Seed+0x5eed),
		bands:    opt.Bands,
		rows:     opt.Permutations / opt.Bands,
		shingleK: opt.ShingleK,
		workers:  par.Workers(workers),
	}
}

// Prepare computes a document's shingles, signature, and band hashes.
func (p *Preparer) Prepare(text string) Prepared {
	sh := Shingles(text, p.shingleK)
	var sig Signature
	if p.workers > 1 && len(sh) >= parallelSignMin {
		sig = p.hasher.SignParallel(sh, p.workers)
	} else {
		sig = p.hasher.Sign(sh)
	}
	bands := make([]uint64, p.bands)
	for b := 0; b < p.bands; b++ {
		h := uint64(fnvOffset64)
		for r := b * p.rows; r < (b+1)*p.rows; r++ {
			v := sig[r]
			for i := 0; i < 64; i += 8 {
				h ^= uint64(byte(v >> i))
				h *= fnvPrime64
			}
		}
		bands[b] = h
	}
	return Prepared{Shingles: sh, Sig: sig, Bands: bands}
}

// Index is a banded LSH index over MinHash signatures. Two documents become
// dedup candidates when they agree on all rows of at least one band; the
// exact Jaccard over shingles then decides.
type Index struct {
	prep      *Preparer
	threshold float64

	buckets []map[uint64][]int // per band: band-hash -> doc ids
	docs    []doc
}

type doc struct {
	id       int
	key      string
	shingles ShingleSet
	sig      Signature
}

// Options configures an Index.
type Options struct {
	Permutations int     // MinHash permutations (default 128)
	Bands        int     // LSH bands (default 32; rows = permutations/bands)
	Threshold    float64 // Jaccard duplicate threshold (default 0.85)
	ShingleK     int     // tokens per shingle (default 5)
	Seed         uint64
}

// NewIndex builds an empty LSH index.
func NewIndex(opt Options) *Index {
	opt = opt.normalize()
	idx := &Index{
		prep:      NewPreparer(opt),
		threshold: opt.Threshold,
		buckets:   make([]map[uint64][]int, opt.Bands),
	}
	for i := range idx.buckets {
		idx.buckets[i] = map[uint64][]int{}
	}
	return idx
}

// Threshold returns the Jaccard duplicate threshold.
func (x *Index) Threshold() float64 { return x.threshold }

// Len returns the number of retained (unique) documents.
func (x *Index) Len() int { return len(x.docs) }

// Preparer returns a Preparer compatible with this index, for concurrent
// batch preparation ahead of sequential AddPrepared calls.
func (x *Index) Preparer() *Preparer { return x.prep }

// AddResult reports what happened to a document offered to the index.
type AddResult struct {
	Unique bool
	// DupOfKey is the retained document this one duplicates (when !Unique).
	DupOfKey string
	// Similarity is the verified Jaccard similarity to DupOfKey.
	Similarity float64
}

// Add offers a document; it is retained iff no prior document matches at or
// above the threshold. The key identifies the document in results.
func (x *Index) Add(key, text string) AddResult {
	return x.AddPrepared(key, x.prep.Prepare(text))
}

// AddPrepared offers a document whose shingles/signature/band hashes were
// computed by a compatible Preparer (same Options). Insertions are strictly
// ordered: the first document offered wins over later duplicates.
func (x *Index) AddPrepared(key string, p Prepared) AddResult {
	seen := map[int]struct{}{}
	bestSim := 0.0
	bestID := -1
	for b := range x.buckets {
		for _, id := range x.buckets[b][p.Bands[b]] {
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			sim := Jaccard(p.Shingles, x.docs[id].shingles)
			if sim > bestSim {
				bestSim = sim
				bestID = id
			}
		}
	}
	if bestID >= 0 && bestSim >= x.threshold {
		return AddResult{Unique: false, DupOfKey: x.docs[bestID].key, Similarity: bestSim}
	}
	id := len(x.docs)
	x.docs = append(x.docs, doc{id: id, key: key, shingles: p.Shingles, sig: p.Sig})
	for b := range x.buckets {
		x.buckets[b][p.Bands[b]] = append(x.buckets[b][p.Bands[b]], id)
	}
	return AddResult{Unique: true}
}

// Keys returns the retained document keys in insertion order.
func (x *Index) Keys() []string {
	out := make([]string, len(x.docs))
	for i, d := range x.docs {
		out[i] = d.key
	}
	return out
}

// Dedup is a convenience wrapper: it feeds texts through a fresh index and
// returns the indices of retained documents, in order.
func Dedup(texts []string, opt Options) []int {
	idx := NewIndex(opt)
	var kept []int
	for i, t := range texts {
		if idx.Add("", t).Unique {
			kept = append(kept, i)
		}
	}
	return kept
}

// PairSimilarity computes the exact Jaccard similarity of two texts using
// the index's shingling parameters.
func (x *Index) PairSimilarity(a, b string) float64 {
	return Jaccard(Shingles(a, x.prep.shingleK), Shingles(b, x.prep.shingleK))
}

// TopBucketSizes reports the largest LSH bucket sizes (diagnostics for the
// curation report).
func (x *Index) TopBucketSizes(n int) []int {
	var sizes []int
	for _, band := range x.buckets {
		for _, ids := range band {
			sizes = append(sizes, len(ids))
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	if len(sizes) > n {
		sizes = sizes[:n]
	}
	return sizes
}
