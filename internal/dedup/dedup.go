// Package dedup implements the de-duplication stage of the FreeSet curation
// pipeline: token shingling, MinHash signatures, banded locality-sensitive
// hashing, and exact Jaccard verification, following the method VeriGen
// describes and the paper adopts (§III-D: MinHash + Jaccard at threshold
// 0.85, LSH for efficient candidate lookup).
package dedup

import (
	"hash/fnv"
	"sort"
	"strings"
)

// Shingles splits text into k-token shingles and returns their 64-bit FNV
// hashes as a set. Tokens are whitespace-separated words, which is robust to
// reformatting while staying cheap.
func Shingles(text string, k int) map[uint64]struct{} {
	if k <= 0 {
		k = 5
	}
	words := strings.Fields(text)
	out := make(map[uint64]struct{}, len(words))
	if len(words) == 0 {
		return out
	}
	if len(words) < k {
		h := fnv.New64a()
		h.Write([]byte(strings.Join(words, " ")))
		out[h.Sum64()] = struct{}{}
		return out
	}
	for i := 0; i+k <= len(words); i++ {
		h := fnv.New64a()
		for j := i; j < i+k; j++ {
			h.Write([]byte(words[j]))
			h.Write([]byte{0})
		}
		out[h.Sum64()] = struct{}{}
	}
	return out
}

// Jaccard computes |a∩b| / |a∪b| over shingle sets.
func Jaccard(a, b map[uint64]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	inter := 0
	for h := range small {
		if _, ok := large[h]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// Signature is a MinHash signature: one minimum per permutation.
type Signature []uint64

// MinHasher derives MinHash signatures with n hash permutations of the form
// h_i(x) = a_i*x + b_i (odd multipliers, 64-bit wraparound).
type MinHasher struct {
	a []uint64
	b []uint64
}

// NewMinHasher builds a hasher with n permutations from a seed.
func NewMinHasher(n int, seed uint64) *MinHasher {
	if n <= 0 {
		n = 128
	}
	m := &MinHasher{a: make([]uint64, n), b: make([]uint64, n)}
	s := splitmix(seed)
	for i := 0; i < n; i++ {
		m.a[i] = s.next() | 1 // odd multiplier: bijection mod 2^64
		m.b[i] = s.next()
	}
	return m
}

// N returns the signature length.
func (m *MinHasher) N() int { return len(m.a) }

// Sign computes the MinHash signature of a shingle set.
func (m *MinHasher) Sign(shingles map[uint64]struct{}) Signature {
	sig := make(Signature, len(m.a))
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	for x := range shingles {
		for i := range m.a {
			h := m.a[i]*x + m.b[i]
			if h < sig[i] {
				sig[i] = h
			}
		}
	}
	return sig
}

// SigSimilarity estimates Jaccard similarity from two signatures.
func SigSimilarity(a, b Signature) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	eq := 0
	for i := range a {
		if a[i] == b[i] {
			eq++
		}
	}
	return float64(eq) / float64(len(a))
}

// splitmix is SplitMix64, used to derive permutation parameters.
type splitmix uint64

func (s *splitmix) next() uint64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Index is a banded LSH index over MinHash signatures. Two documents become
// dedup candidates when they agree on all rows of at least one band; the
// exact Jaccard over shingles then decides.
type Index struct {
	hasher    *MinHasher
	bands     int
	rows      int
	threshold float64
	shingleK  int

	buckets []map[uint64][]int // per band: band-hash -> doc ids
	docs    []doc
}

type doc struct {
	id       int
	key      string
	shingles map[uint64]struct{}
	sig      Signature
}

// Options configures an Index.
type Options struct {
	Permutations int     // MinHash permutations (default 128)
	Bands        int     // LSH bands (default 32; rows = permutations/bands)
	Threshold    float64 // Jaccard duplicate threshold (default 0.85)
	ShingleK     int     // tokens per shingle (default 5)
	Seed         uint64
}

// NewIndex builds an empty LSH index.
func NewIndex(opt Options) *Index {
	if opt.Permutations <= 0 {
		opt.Permutations = 128
	}
	if opt.Bands <= 0 {
		opt.Bands = 32
	}
	if opt.Permutations%opt.Bands != 0 {
		opt.Permutations = opt.Bands * ((opt.Permutations + opt.Bands - 1) / opt.Bands)
	}
	if opt.Threshold == 0 {
		opt.Threshold = 0.85
	}
	if opt.ShingleK <= 0 {
		opt.ShingleK = 5
	}
	idx := &Index{
		hasher:    NewMinHasher(opt.Permutations, opt.Seed+0x5eed),
		bands:     opt.Bands,
		rows:      opt.Permutations / opt.Bands,
		threshold: opt.Threshold,
		shingleK:  opt.ShingleK,
		buckets:   make([]map[uint64][]int, opt.Bands),
	}
	for i := range idx.buckets {
		idx.buckets[i] = map[uint64][]int{}
	}
	return idx
}

// Threshold returns the Jaccard duplicate threshold.
func (x *Index) Threshold() float64 { return x.threshold }

// Len returns the number of retained (unique) documents.
func (x *Index) Len() int { return len(x.docs) }

// bandHash hashes one band of a signature.
func (x *Index) bandHash(sig Signature, band int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for r := band * x.rows; r < (band+1)*x.rows; r++ {
		v := sig[r]
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// AddResult reports what happened to a document offered to the index.
type AddResult struct {
	Unique bool
	// DupOfKey is the retained document this one duplicates (when !Unique).
	DupOfKey string
	// Similarity is the verified Jaccard similarity to DupOfKey.
	Similarity float64
}

// Add offers a document; it is retained iff no prior document matches at or
// above the threshold. The key identifies the document in results.
func (x *Index) Add(key, text string) AddResult {
	sh := Shingles(text, x.shingleK)
	sig := x.hasher.Sign(sh)

	seen := map[int]struct{}{}
	bestSim := 0.0
	bestID := -1
	for b := 0; b < x.bands; b++ {
		bh := x.bandHash(sig, b)
		for _, id := range x.buckets[b][bh] {
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			sim := Jaccard(sh, x.docs[id].shingles)
			if sim > bestSim {
				bestSim = sim
				bestID = id
			}
		}
	}
	if bestID >= 0 && bestSim >= x.threshold {
		return AddResult{Unique: false, DupOfKey: x.docs[bestID].key, Similarity: bestSim}
	}
	id := len(x.docs)
	x.docs = append(x.docs, doc{id: id, key: key, shingles: sh, sig: sig})
	for b := 0; b < x.bands; b++ {
		bh := x.bandHash(sig, b)
		x.buckets[b][bh] = append(x.buckets[b][bh], id)
	}
	return AddResult{Unique: true}
}

// Keys returns the retained document keys in insertion order.
func (x *Index) Keys() []string {
	out := make([]string, len(x.docs))
	for i, d := range x.docs {
		out[i] = d.key
	}
	return out
}

// Dedup is a convenience wrapper: it feeds texts through a fresh index and
// returns the indices of retained documents, in order.
func Dedup(texts []string, opt Options) []int {
	idx := NewIndex(opt)
	var kept []int
	for i, t := range texts {
		if idx.Add("", t).Unique {
			kept = append(kept, i)
		}
	}
	return kept
}

// PairSimilarity computes the exact Jaccard similarity of two texts using
// the index's shingling parameters.
func (x *Index) PairSimilarity(a, b string) float64 {
	return Jaccard(Shingles(a, x.shingleK), Shingles(b, x.shingleK))
}

// TopBucketSizes reports the largest LSH bucket sizes (diagnostics for the
// curation report).
func (x *Index) TopBucketSizes(n int) []int {
	var sizes []int
	for _, band := range x.buckets {
		for _, ids := range band {
			sizes = append(sizes, len(ids))
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	if len(sizes) > n {
		sizes = sizes[:n]
	}
	return sizes
}
