//freehw:hotpath

package similarity

// Block-max pruned scoring: exact top-k retrieval that skips most of the
// index on selective queries instead of touching every posting of every
// query term.
//
// The starting point is MaxScore/WAND-style pruning over the doc-ordered
// posting lists, with the block-max metadata postingList.add maintains
// incrementally. One twist matters for this corpus: similarity here is
// tf-only cosine — there is no idf — so corpus-universal terms (Verilog
// keywords, punctuation) carry enormous upper bounds. Classic MaxScore,
// which keeps the highest-bound terms essential, would surface every
// document as a candidate and prune nothing on whole-file audit queries.
// The hot path (k == 1, behind Best and BestBatch) therefore splits the
// query's posting lists three ways and scores by gathering rather than by
// cursor merging:
//
//   - Dense lists (document frequency == corpus size; posting position
//     therefore equals doc id) never generate candidates. Their per-block
//     maxima align with document blocks and collapse into one shared
//     per-block bound: the most ALL dense terms together can contribute
//     to any document in that block. And because a dense list is a
//     doc-indexed array, any single document's exact dense contribution
//     is one O(1) read per list — no cursor, no search.
//   - The cheapest sparse lists — ordered by upper bound per posting, the
//     absorption order that buys the most skipped postings per unit of
//     threshold budget — are absorbed into a non-essential prefix while
//     their summed bounds plus the largest dense block bound stay
//     strictly below the threshold. Their postings are never read.
//   - The remaining essential sparse lists are streamed once into a
//     per-document accumulator (the gather). Each touched document is
//     then bounded by dense-block bound + absorbed-prefix bound + its
//     exact gathered sum; documents that straddle the threshold have the
//     block bound replaced by their exact dense contribution before the
//     search pays a full evaluation.
//   - Survivors are evaluated fully — every query term, in canonical
//     query order (first appearance in the query — a property of the
//     query alone, so the same order in every segment), the same order
//     the exhaustive accumulator uses — with early abandonment against
//     canonical-order tail bounds. On a selective audit that is one
//     document: the match.
//   - Documents touched by no essential list are never visited: absorbed
//     lists are covered by the absorption invariant, and dense lists by a
//     final sweep asserting every dense block bound ends strictly below
//     the final threshold (otherwise the search rescores exhaustively —
//     correctness never depends on the sweep passing, only on it being
//     checked).
//
// The threshold that powers all of this is primed before scoring starts
// (see searchPrunedBest): near-duplicate queries carry nearly-unique
// "pointer" terms that vote for the matching document, whose exact score
// — accumulated in canonical order, so bit-identical to what the main
// pass would compute — is pushed into the heap up front.
//
// Exactness is non-negotiable here (the serving layer's golden fixtures
// and the offline/online byte-equality tests pin scores bit-for-bit), and
// rests on two invariants:
//
//  1. Bit-identical sums. A fully evaluated document accumulates its dot
//     product in exactly the order the exhaustive path uses, so the kept
//     scores are not merely close — they are the same float64s.
//  2. Conservative bounds. Upper bounds are inflated and the threshold
//     deflated by a slack factor covering worst-case float64 summation
//     error (bounds and scores are sums in different orders, so exact
//     comparison would be unsound), and a candidate is pruned only when
//     its bound is STRICTLY below the threshold — so only documents
//     provably worse than the k-th best are ever skipped. Ties are never
//     pruned: a tying document always reaches full evaluation, where the
//     heap's lowest-index tie rule (matchWorse) decides, independent of
//     visit order. That strictness is also what makes threshold priming
//     sound: pushing a real document's exact score early can never cause
//     a different document with an equal or better score to be skipped.
//
// k > 1 (TopK) uses the classic MaxScore DAAT partition over all cursors
// — the same bounds, threshold discipline, and canonical evaluation,
// without the dense split (a size-k heap makes the k == 1 path's
// re-push-idempotence argument unavailable).
//
// Worst case, the corpus is so homogeneous that no threshold separates
// documents (every doc scores within the bounds' slack of the best — the
// adversarial case for any exact pruner). Both paths detect that pruning
// is not paying and fall back to the exhaustive accumulator, bounding the
// regression to a small constant factor while keeping the large wins on
// selective workloads.

import (
	"container/heap"
	"math"
	"slices"
	"sync"
	"sync/atomic"
)

const (
	// blockSize postings share one bmax entry. Small enough that a block
	// skip is fine-grained, large enough that the metadata is ~1.5% of
	// the postings.
	blockSize  = 64
	blockMask  = blockSize - 1
	blockShift = 6

	// pruneMinDocs is the corpus size below which searchAuto uses the
	// exhaustive accumulator: pruning bookkeeping cannot pay for itself
	// on tiny corpora. (Results are identical either way — the pruned
	// path is bit-exact — this is purely a latency knob.)
	pruneMinDocs = 96

	// bailMinCandidates / bailEvalNum / bailEvalDen: after this many
	// threshold-guarded candidates, if more than bailEvalNum/bailEvalDen
	// of them required full evaluation, the corpus is too homogeneous
	// for pruning and the search switches to the exhaustive accumulator.
	bailMinCandidates = 24
	bailEvalNum       = 3
	bailEvalDen       = 4

	// epsUlp is one float64 ulp at 1.0; the slack factors scale it by the
	// number of terms in a sum (plus margin) to bound accumulated
	// rounding error of nonnegative sums-of-products.
	epsUlp = 2.3e-16
)

// Search modes. Best/TopK use searchAuto; tests force a path to compare
// the two bit-for-bit.
const (
	searchAuto = iota
	searchPruned
	searchExhaustive
)

// PruneStats is a snapshot of the pruned-scoring counters (collected only
// while EnablePruneStats(true) is set; zero-cost one atomic load per query
// otherwise). PostingsTotal counts every posting of every resolved query
// term; PostingsVisited counts the ones actually read (streamed, probed,
// or fetched for an exact dense refinement). The difference is the work
// pruning skipped.
type PruneStats struct {
	Queries         uint64 // scored queries (pruned path only)
	Exhaustive      uint64 // queries answered by the exhaustive fallback
	Bailouts        uint64 // pruned searches that bailed to the accumulator
	PostingsTotal   uint64
	PostingsVisited uint64
	Candidates      uint64 // documents surfaced by essential lists
	FullEvals       uint64 // candidates that reached full evaluation
	BlockSkips      uint64 // candidates pruned by a dense/bmax block bound alone
}

var pruneStatsOn atomic.Bool

var pruneCounters struct {
	queries, exhaustive, bailouts         atomic.Uint64
	total, visited, candidates, fullEvals atomic.Uint64
	blockSkips                            atomic.Uint64
}

// EnablePruneStats toggles collection of PruneStats.
func EnablePruneStats(on bool) { pruneStatsOn.Store(on) }

// ReadPruneStats returns the counters accumulated since the last reset.
func ReadPruneStats() PruneStats {
	return PruneStats{
		Queries:         pruneCounters.queries.Load(),
		Exhaustive:      pruneCounters.exhaustive.Load(),
		Bailouts:        pruneCounters.bailouts.Load(),
		PostingsTotal:   pruneCounters.total.Load(),
		PostingsVisited: pruneCounters.visited.Load(),
		Candidates:      pruneCounters.candidates.Load(),
		FullEvals:       pruneCounters.fullEvals.Load(),
		BlockSkips:      pruneCounters.blockSkips.Load(),
	}
}

// ResetPruneStats zeroes the counters.
func ResetPruneStats() {
	pruneCounters.queries.Store(0)
	pruneCounters.exhaustive.Store(0)
	pruneCounters.bailouts.Store(0)
	pruneCounters.total.Store(0)
	pruneCounters.visited.Store(0)
	pruneCounters.candidates.Store(0)
	pruneCounters.fullEvals.Store(0)
	pruneCounters.blockSkips.Store(0)
}

// pruneCursor is one query term's posting-list view: the doc-ordered
// postings, block maxima, the query-side count, and the term's global
// upper bound contribution. The k > 1 DAAT path also uses it as a cursor
// via pos/seek; the k == 1 gather path never moves pos.
type pruneCursor struct {
	docs []int32
	ws   []float64
	bmax []float64
	qw   float64
	ub   float64 // qw * tmax, raw (slack applied at comparison sites)
	pos  int
}

// seek advances the cursor to the first posting with doc >= d (galloping
// from the current position, so total seek cost over a query is
// O(len * log) regardless of stride).
func (cur *pruneCursor) seek(d int32) {
	docs := cur.docs
	n := len(docs)
	pos := cur.pos
	if pos >= n || docs[pos] >= d {
		return
	}
	step := 1
	next := pos + 1
	for next < n && docs[next] < d {
		pos = next
		next += step
		step <<= 1
	}
	hi := next
	if hi > n {
		hi = n
	}
	lo := pos + 1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if docs[mid] < d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	cur.pos = lo
}

// searchScratch holds the per-search allocations, pooled across queries.
type searchScratch struct {
	qts   []uint64
	curs  []pruneCursor
	ord   []int32
	dord  []int32
	touch []int32
	pref  []float64
	tail  []float64
	dense []float64
	dtail []float64
	prime []int32
	h     matchHeap
}

var scratchPool = sync.Pool{New: func() any { return &searchScratch{} }}

// accPool recycles per-document accumulators (sized to the corpus).
var accPool = sync.Pool{New: func() any { return new([]float64) }}

func getAcc(n int) *[]float64 {
	p := accPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	clear(*p)
	return p
}

// deadBit reports whether doc d is tombstoned in the bitmap (nil = no
// tombstones). Bit d of word d/64, the layout Snapshot and Index share.
func deadBit(dead []uint64, d int32) bool {
	return dead != nil && dead[d>>6]&(1<<(uint32(d)&63)) != 0
}

// searchTopK is the one scoring engine behind Best and TopK: exact top-k
// matches, best first. mode selects the path (searchAuto decides by corpus
// size); both paths return bit-identical results.
func (c *Corpus) searchTopK(text string, k int, mode int) []Match {
	return c.searchTopKDead(text, k, mode, nil)
}

// searchTopKDead is searchTopK with a tombstone bitmap: dead documents
// never reach the heap AND never set the pruning threshold (a dead doc's
// score raising theta could wrongly prune a live doc), so the result is
// bit-identical to scoring a corpus that never contained them. dead may
// be nil (no tombstones — the common case, zero overhead on the scan
// loops beyond one predictable branch).
func (c *Corpus) searchTopKDead(text string, k int, mode int, dead []uint64) []Match {
	if k <= 0 || len(c.names) == 0 {
		return nil
	}
	if k > len(c.names) {
		k = len(c.names)
	}
	sc := scratchPool.Get().(*searchScratch)
	defer scratchPool.Put(sc)

	qts, qnorm := c.resolveQuery(text, sc.qts)
	sc.qts = qts[:0]
	if qnorm == 0 {
		return nil
	}

	// Build cursors in canonical query order (qts is in the query's
	// first-appearance order): the canonical evaluation order. Terms with
	// empty posting lists cannot contribute and are dropped — dropping
	// preserves the relative order, so per-document sums stay canonical.
	curs := sc.curs[:0]
	totalPostings := 0
	for _, qt := range qts {
		pl := &c.postings[qtermID(qt)]
		if len(pl.docs) == 0 {
			continue
		}
		qw := qtermW(qt)
		curs = append(curs, pruneCursor{
			docs: pl.docs, ws: pl.ws, bmax: pl.bmax,
			qw: qw, ub: qw * pl.tmax,
		})
		totalPostings += len(pl.docs)
	}
	sc.curs = curs
	n := len(curs)
	if n == 0 {
		return []Match{}
	}

	h := sc.h[:0]
	if cap(h) < k {
		h = make(matchHeap, 0, k)
	}

	usePruned := mode == searchPruned || (mode == searchAuto && len(c.names) >= pruneMinDocs)
	statsOn := pruneStatsOn.Load()
	if statsOn {
		pruneCounters.total.Add(uint64(totalPostings))
		if usePruned {
			pruneCounters.queries.Add(1)
		} else {
			pruneCounters.exhaustive.Add(1)
		}
	}

	switch {
	case !usePruned:
		h = c.finishExhaustive(curs, -1, h, k, qnorm, statsOn, dead)
	case k == 1:
		h = c.searchPrunedBest(sc, totalPostings, h, qnorm, statsOn, dead)
	default:
		h = c.searchPrunedDAAT(sc, totalPostings, h, k, qnorm, statsOn, dead)
	}
	sc.h = h

	out := make([]Match, len(h))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(Match)
	}
	return out
}

// pushMatch offers m to the bounded heap, returning true if the heap
// changed (same keep/replace semantics the exhaustive TopK always had:
// weakest-out, ties keep the lower index).
func pushMatch(h *matchHeap, k int, m Match) bool {
	if len(*h) < k {
		heap.Push(h, m)
		return true
	}
	if matchWorse((*h)[0], m) {
		(*h)[0] = m
		heap.Fix(h, 0)
		return true
	}
	return false
}

// canonicalTails fills sc.tail with tail[i] = inflated sum of upper
// bounds of cursors i.. in canonical order — what a full evaluation can
// still add after cursor i-1.
func canonicalTails(sc *searchScratch, inflate float64) []float64 {
	curs := sc.curs
	n := len(curs)
	tail := sc.tail[:0]
	if cap(tail) < n+1 {
		tail = make([]float64, n+1)
	}
	tail = tail[:n+1]
	tail[n] = 0
	rcum := 0.0
	for i := n - 1; i >= 0; i-- {
		rcum += curs[i].ub
		tail[i] = rcum * inflate
	}
	sc.tail = tail
	return tail
}

// evalCanonical computes document d's exact dot product — every query
// term, in canonical query order, the bit-identical twin of the
// exhaustive accumulator's per-doc sum — without moving any cursor
// position. Dense lists (len == nDocs, so posting position == doc id) are
// read directly; the rest binary-search. With theta >= 0 it abandons
// early (reporting abandoned=true) once the partial sum plus the
// canonical tail bound cannot reach theta.
func evalCanonical(curs []pruneCursor, tail []float64, nDocs int, d int32, theta float64) (acc float64, abandoned bool) {
	for i := range curs {
		if len(curs[i].docs) == nDocs {
			acc += curs[i].qw * curs[i].ws[d]
		} else if j, ok := binSearchDocs(curs[i].docs, d); ok {
			acc += curs[i].qw * curs[i].ws[j]
		}
		if theta >= 0 && acc+tail[i+1] < theta {
			return acc, true
		}
	}
	return acc, false
}

// searchPrunedBest is the k == 1 gather engine (see the package comment):
// dense/sparse split, threshold priming, absorbed-prefix partition, one
// streaming gather of the essential sparse postings, then bound → refine →
// canonical evaluation per touched document. The size-1 heap makes every
// push of an already-known document a no-op, which is what lets priming
// and the exhaustive fallbacks re-score documents freely.
func (c *Corpus) searchPrunedBest(sc *searchScratch, totalPostings int, h matchHeap, qnorm float64, statsOn bool, dead []uint64) matchHeap {
	curs := sc.curs
	n := len(curs)
	nDocs := len(c.names)

	// Slack factors: any bound is a sum of at most n products, so one
	// multiplicative inflation covers its worst-case rounding deficit;
	// the threshold is deflated symmetrically (it round-trips through a
	// score division). See the package comment for why comparing
	// differently-ordered float sums needs this.
	slack := float64(n+32) * epsUlp
	inflate := 1 + slack
	deflate := 1 - slack

	// Dense/sparse split: dense lists fold into one shared per-document-
	// block bound and a list of doc-indexed arrays for exact refinement.
	nBlocks := (nDocs + blockMask) >> blockShift
	denseBmax := sc.dense
	if cap(denseBmax) < nBlocks {
		denseBmax = make([]float64, nBlocks)
	}
	denseBmax = denseBmax[:nBlocks]
	clear(denseBmax)
	sc.dense = denseBmax
	ord := sc.ord[:0]
	dord := sc.dord[:0]
	for i := range curs {
		if len(curs[i].docs) == nDocs {
			dord = append(dord, int32(i))
			for b, bm := range curs[i].bmax {
				denseBmax[b] += curs[i].qw * bm
			}
		} else {
			ord = append(ord, int32(i))
		}
	}
	sc.ord, sc.dord = ord, dord
	nDense := len(dord)
	denseBmaxMax := 0.0
	for _, v := range denseBmax {
		if v > denseBmaxMax {
			denseBmaxMax = v
		}
	}
	// Refinement order: dense lists by DESCENDING upper bound (ties by
	// index — deterministic), with dtail[i] = what lists i.. could still
	// contribute. Reading the most uncertain lists first lets a
	// refinement stop after a couple of exact reads instead of all of
	// them.
	sortDenseByUBDesc(dord, curs)
	dtail := sc.dtail[:0]
	if cap(dtail) < nDense+1 {
		dtail = make([]float64, nDense+1)
	}
	dtail = dtail[:nDense+1]
	dtail[nDense] = 0
	for i := nDense - 1; i >= 0; i-- {
		dtail[i] = dtail[i+1] + curs[dord[i]].ub
	}
	sc.dtail = dtail
	if len(ord) == 0 {
		// Every list is dense: no sparse list to surface candidates, so
		// the whole corpus must be scored anyway.
		return c.finishExhaustive(curs, -1, h, 1, qnorm, statsOn, dead)
	}
	sortSparseByRatio(ord, curs)

	// pref[i]: raw sum of the absorbed-prefix upper bounds ord[:i+1] —
	// the most those sparse lists can ever contribute to any document.
	pref := sc.pref[:0]
	cum := 0.0
	for _, ci := range ord {
		cum += curs[ci].ub
		pref = append(pref, cum)
	}
	sc.pref = pref

	tail := canonicalTails(sc, inflate)

	var visited, fullEvals, blockSkips uint64
	evalBudget := uint64(totalPostings) / bailEvalDen

	// thetaAcc is the comparison threshold: the best known dot product,
	// DEFLATED by the slack factor. Deflation provides an absolute margin
	// proportional to theta itself — necessary because a candidate's
	// partial sums can fall short of its final accumulated value by
	// rounding error that scales with the total, not with the (possibly
	// tiny) remaining tail bound. <0 means no threshold yet.
	thetaAcc := -1.0
	updateTheta := func() {
		if len(h) == 1 {
			if t := h[0].Score * qnorm * deflate; t > thetaAcc {
				thetaAcc = t
			}
		}
	}

	flushStats := func(cands uint64) {
		if statsOn {
			pruneCounters.visited.Add(visited)
			pruneCounters.candidates.Add(cands)
			pruneCounters.fullEvals.Add(fullEvals)
			pruneCounters.blockSkips.Add(blockSkips)
		}
	}
	bailExhaustive := func(cands uint64) matchHeap {
		if statsOn {
			pruneCounters.bailouts.Add(1)
		}
		flushStats(cands)
		// The gather never moved cursor positions, so the accumulator
		// streams the whole corpus; re-pushing the document the heap
		// already holds is a no-op (same score, same index).
		return c.finishExhaustive(curs, -1, h, 1, qnorm, statsOn, dead)
	}
	// hopeless reports whether the final completeness sweep could ever
	// pass: it can only if every dense block bound ends strictly below the
	// threshold, and the threshold only ever rises. When the largest dense
	// block bound already meets it — a fresh candidate against a
	// homogeneous corpus, where the best score is mediocre but keyword
	// mass is everywhere — pruning is doomed and the search should stream
	// immediately.
	hopeless := func() bool {
		return nDense > 0 && (thetaAcc < 0 || denseBmaxMax*inflate >= thetaAcc)
	}

	// Threshold priming: scoring visits documents in essential-list order,
	// so on a needle-in-haystack audit the threshold would stay low until
	// the matching document happens to come up. Instead, fully score a
	// handful of documents up front and push them straight into the heap:
	// each primed score is accumulated in canonical order, so it is
	// bit-identical to what the main pass would compute, and re-pushing
	// the same document later is a no-op. The threshold is live before the
	// partition is drawn, and completeness never depends on a primed
	// document being re-surfaced.
	// Prime candidates are elected by vote: gather the postings of the
	// nearly-unique "pointer" lists (df <= primeSelDF — a near-dup query
	// has ~one such term per copied line, all naming the same file) and
	// score the documents they name most often. When no pointer lists
	// exist, fall back to seeding from the most selective high-impact
	// lists, which at worst wastes primeBudget evaluations.
	if n > 1 {
		const (
			primeSelDF   = 4   // pointer lists: terms in almost no documents
			primeWideDF  = 128 // fallback seeding pool
			primeBudget  = 4   // full evaluations spent on seeding
			primeCollect = 512 // cap on pointer postings gathered
		)
		collect := sc.prime[:0]
		for oi := len(ord) - 1; oi >= 0 && len(collect) < primeCollect; oi-- {
			cur := &curs[ord[oi]]
			if len(cur.docs) <= primeSelDF {
				collect = append(collect, cur.docs...)
			}
		}
		sc.prime = collect
		var primeDocs [primeBudget]int32
		var cnts [primeBudget]int
		nPrime := 0
		if len(collect) > 0 {
			slices.Sort(collect)
			// Keep the primeBudget docs with the longest runs (= named by
			// the most pointer terms). Replacement is strict-greater, and
			// runs arrive in ascending doc order, so ties keep lower ids —
			// deterministic.
			for i := 0; i < len(collect); {
				j := i + 1
				for j < len(collect) && collect[j] == collect[i] {
					j++
				}
				run := j - i
				if deadBit(dead, collect[i]) {
					i = j // tombstoned doc: must not seed the threshold
					continue
				}
				if nPrime < primeBudget {
					primeDocs[nPrime], cnts[nPrime] = collect[i], run
					nPrime++
				} else {
					mi := 0
					for s := 1; s < primeBudget; s++ {
						if cnts[s] < cnts[mi] {
							mi = s
						}
					}
					if run > cnts[mi] {
						primeDocs[mi], cnts[mi] = collect[i], run
					}
				}
				i = j
			}
		} else {
			for oi := len(ord) - 1; oi >= 0 && nPrime < primeBudget; oi-- {
				cur := &curs[ord[oi]]
				if len(cur.docs) > primeWideDF {
					continue
				}
				for _, d := range cur.docs {
					if nPrime >= primeBudget {
						break
					}
					if deadBit(dead, d) {
						continue
					}
					dup := false
					for _, p := range primeDocs[:nPrime] {
						if p == d {
							dup = true
							break
						}
					}
					if !dup {
						primeDocs[nPrime] = d
						nPrime++
					}
				}
			}
		}
		// Best guess first (descending vote count, ties by lower doc id):
		// the leader alone decides whether pruning is viable, so the
		// hopeless check can run after one evaluation instead of four.
		for i := 1; i < nPrime; i++ {
			d, ct := primeDocs[i], cnts[i]
			j := i
			for j > 0 && (cnts[j-1] < ct || (cnts[j-1] == ct && primeDocs[j-1] > d)) {
				primeDocs[j], cnts[j] = primeDocs[j-1], cnts[j-1]
				j--
			}
			primeDocs[j], cnts[j] = d, ct
		}
		for pi, d := range primeDocs[:nPrime] {
			acc, _ := evalCanonical(curs, tail, nDocs, d, -1)
			visited += uint64(n)
			if acc > 0 {
				pushMatch(&h, 1, Match{Name: c.names[d], Index: int(d), Score: acc / qnorm})
			}
			if pi == 0 {
				// A fresh candidate against a homogeneous corpus is decided
				// here: the primed threshold lands below the dense block
				// bounds and the remaining evaluations would be wasted.
				updateTheta()
				if hopeless() {
					return bailExhaustive(0)
				}
			}
		}
	}

	updateTheta()
	if hopeless() {
		return bailExhaustive(0)
	}

	// Fixed partition: absorb the cheapest sparse lists while their
	// summed bounds plus the largest dense block bound stay strictly
	// below the threshold. This is exactly the invariant that lets
	// documents appearing only in absorbed lists go unvisited.
	nonEss := 0
	if thetaAcc >= 0 {
		for nonEss < len(ord) && (pref[nonEss]+denseBmaxMax)*inflate < thetaAcc {
			nonEss++
		}
	}
	prefPart := 0.0
	if nonEss > 0 {
		prefPart = pref[nonEss-1]
	}
	essPostings := 0
	for _, ci := range ord[nonEss:] {
		essPostings += len(curs[ci].docs)
	}

	// If most of the index would be streamed anyway, pruning cannot pay:
	// go straight to the fused exhaustive accumulator.
	if uint64(essPostings) > uint64(totalPostings)/2 {
		return bailExhaustive(0)
	}

	// Gather: stream the essential sparse postings once into a pooled
	// per-document accumulator, recording each document on first touch
	// (all contributions are positive, so zero means untouched). The
	// touched order is a deterministic function of corpus and query.
	accp := getAcc(nDocs)
	defer accPool.Put(accp)
	acc := *accp
	touched := sc.touch[:0]
	for _, ci := range ord[nonEss:] {
		cur := &curs[ci]
		qw := cur.qw
		for j, d := range cur.docs {
			if acc[d] == 0 {
				touched = append(touched, d)
			}
			acc[d] += qw * cur.ws[j]
		}
	}
	sc.touch = touched
	visited += uint64(essPostings)

	// Score the touched documents: cheap bound, exact dense refinement
	// for straddlers, canonical evaluation for survivors. Tombstoned docs
	// are skipped before any bound or evaluation — they can neither match
	// nor raise the threshold.
	for _, d := range touched {
		if deadBit(dead, d) {
			continue
		}
		if thetaAcc >= 0 {
			bound := denseBmax[d>>blockShift] + prefPart + acc[d]
			if bound*inflate < thetaAcc {
				blockSkips++
				continue
			}
			if nDense > 0 {
				// The block bound straddles the threshold. Dense lists are
				// doc-indexed (docs[j] == j), so the document's EXACT dense
				// contribution is one O(1) read per dense list — swap reads
				// in for upper bounds, most uncertain list first, until the
				// bound drops strictly below the threshold or every list is
				// exact (then a full evaluation is truly warranted).
				base := prefPart + acc[d]
				exact := 0.0
				pruned := false
				for i, di := range dord {
					cur := &curs[di]
					exact += cur.qw * cur.ws[d]
					visited++
					if (base+exact+dtail[i+1])*inflate < thetaAcc {
						pruned = true
						break
					}
				}
				if pruned {
					continue
				}
			}
		}
		av, abandoned := evalCanonical(curs, tail, nDocs, d, thetaAcc)
		visited += uint64(n)
		fullEvals++
		if !abandoned && av > 0 {
			if pushMatch(&h, 1, Match{Name: c.names[d], Index: int(d), Score: av / qnorm}) {
				updateTheta()
			}
		}
		// Bailout: pruning is not separating documents (homogeneous
		// corpus) — the budget bounds the damage to a fraction of one
		// exhaustive pass before switching to it.
		if visited > evalBudget {
			return bailExhaustive(uint64(len(touched)))
		}
	}

	// Dense completeness sweep: documents in no essential list were never
	// individually examined, and they are provably below the threshold
	// only if every dense block bound ends strictly below it. When any
	// block fails the check (short documents with outsized weights, or no
	// threshold at all), rescore exhaustively — correctness never depends
	// on this sweep passing, only on it being checked.
	if nDense > 0 {
		flagged := thetaAcc < 0
		if !flagged {
			for _, v := range denseBmax {
				if v*inflate >= thetaAcc {
					flagged = true
					break
				}
			}
		}
		if flagged {
			return bailExhaustive(uint64(len(touched)))
		}
	}
	flushStats(uint64(len(touched)))
	return h
}

// searchPrunedDAAT is the k > 1 MaxScore engine: document-at-a-time
// cursor merging over all posting lists, a non-essential prefix absorbed
// by the running k-th-best threshold, per-candidate bounds from exact
// essential reads, and canonical full evaluation for survivors. It bails
// to the exhaustive accumulator for the remaining document range when
// pruning is not paying.
func (c *Corpus) searchPrunedDAAT(sc *searchScratch, totalPostings int, h matchHeap, k int, qnorm float64, statsOn bool, dead []uint64) matchHeap {
	curs := sc.curs
	n := len(curs)

	slack := float64(n+32) * epsUlp
	inflate := 1 + slack
	deflate := 1 - slack

	ord := sc.ord[:0]
	for i := range curs {
		ord = append(ord, int32(i))
	}
	sortSparseByRatio(ord, curs)
	sc.ord = ord

	// pref[i]: raw sum of the absorbed-prefix upper bounds ord[:i+1].
	pref := sc.pref[:0]
	cum := 0.0
	for _, ci := range ord {
		cum += curs[ci].ub
		pref = append(pref, cum)
	}
	sc.pref = pref

	tail := canonicalTails(sc, inflate)

	nonEss := 0
	var visited, candidates, fullEvals, blockSkips uint64
	evalBudget := uint64(totalPostings) / bailEvalDen
	var guardedCands, guardedEvals uint64
	lastDoc := int32(-1)

	// thetaAcc: the k-th best dot product, deflated (see searchPrunedBest).
	thetaAcc := -1.0
	updateTheta := func() {
		if len(h) == k {
			if t := h[0].Score * qnorm * deflate; t > thetaAcc {
				thetaAcc = t
			}
		}
	}

	flushStats := func() {
		if statsOn {
			pruneCounters.visited.Add(visited)
			pruneCounters.candidates.Add(candidates)
			pruneCounters.fullEvals.Add(fullEvals)
			pruneCounters.blockSkips.Add(blockSkips)
		}
	}

	for {
		// Grow the non-essential prefix as the threshold rises. Documents
		// appearing only in absorbed lists are bounded by pref and never
		// surface — that is sound because the check held (with the then-
		// current, only-ever-lower threshold) at the moment the frontier
		// passed them.
		if thetaAcc >= 0 {
			for nonEss < n && pref[nonEss]*inflate < thetaAcc {
				nonEss++
			}
		}
		if nonEss == n {
			break // no document can reach the top k on any term
		}
		prefPart := 0.0
		if nonEss > 0 {
			prefPart = pref[nonEss-1]
		}

		// With a single essential cursor, skip whole blocks whose bmax
		// cannot lift any document past the threshold.
		if nonEss == n-1 && thetaAcc >= 0 {
			cur := &curs[ord[n-1]]
			for cur.pos < len(cur.docs) {
				b := cur.pos >> blockShift
				if (prefPart+cur.qw*cur.bmax[b])*inflate < thetaAcc {
					next := (b + 1) << blockShift
					if next > len(cur.docs) {
						next = len(cur.docs)
					}
					cur.pos = next
					blockSkips++
					continue
				}
				break
			}
		}

		// Next candidate: minimum current doc across essential cursors.
		d := int32(math.MaxInt32)
		for _, ci := range ord[nonEss:] {
			cur := &curs[ci]
			if cur.pos < len(cur.docs) && cur.docs[cur.pos] < d {
				d = cur.docs[cur.pos]
			}
		}
		if d == math.MaxInt32 {
			break // essential cursors exhausted
		}
		lastDoc = d
		if deadBit(dead, d) {
			// Tombstoned: advance past it without scoring — its score must
			// never reach the heap or set the threshold.
			for _, ci := range ord[nonEss:] {
				cur := &curs[ci]
				if cur.pos < len(cur.docs) && cur.docs[cur.pos] == d {
					cur.pos++
				}
			}
			continue
		}
		candidates++

		// Candidate bound: everything the absorbed prefix could add plus
		// the candidate's EXACT essential contributions (each essential
		// cursor is already positioned on d, so the exact weight is as
		// cheap as its block max and far tighter).
		if thetaAcc >= 0 {
			bound := prefPart
			for _, ci := range ord[nonEss:] {
				cur := &curs[ci]
				if cur.pos < len(cur.docs) && cur.docs[cur.pos] == d {
					bound += cur.qw * cur.ws[cur.pos]
				}
			}
			guardedCands++
			if bound*inflate < thetaAcc {
				for _, ci := range ord[nonEss:] {
					cur := &curs[ci]
					if cur.pos < len(cur.docs) && cur.docs[cur.pos] == d {
						cur.pos++
						visited++
					}
				}
				continue
			}
		}

		// Full evaluation in canonical query order — the bit-identical
		// twin of the exhaustive accumulator's per-doc sum — with early
		// abandonment against the canonical-order tail bounds.
		acc := 0.0
		abandoned := false
		fullEvals++
		if thetaAcc >= 0 {
			guardedEvals++
		}
		for i := range curs {
			cur := &curs[i]
			cur.seek(d)
			visited++
			if cur.pos < len(cur.docs) && cur.docs[cur.pos] == d {
				acc += cur.qw * cur.ws[cur.pos]
				cur.pos++
			}
			if thetaAcc >= 0 && acc+tail[i+1] < thetaAcc {
				for j := i + 1; j < n; j++ {
					cj := &curs[j]
					if cj.pos < len(cj.docs) && cj.docs[cj.pos] == d {
						cj.pos++
					}
				}
				abandoned = true
				break
			}
		}
		if !abandoned && acc > 0 {
			if pushMatch(&h, k, Match{Name: c.names[d], Index: int(d), Score: acc / qnorm}) {
				updateTheta()
			}
		}

		// Bailout: pruning is not separating documents (homogeneous
		// corpus) — finish with the streaming accumulator instead of
		// paying per-candidate DAAT overhead for every remaining doc.
		if visited > evalBudget ||
			(guardedCands >= bailMinCandidates && guardedEvals*bailEvalDen >= guardedCands*bailEvalNum) {
			if statsOn {
				pruneCounters.bailouts.Add(1)
			}
			flushStats()
			return c.finishExhaustive(curs, lastDoc, h, k, qnorm, statsOn, dead)
		}
	}
	flushStats()
	return h
}

// binSearchDocs finds d in a sorted doc-id list.
func binSearchDocs(docs []int32, d int32) (int, bool) {
	lo, hi := 0, len(docs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if docs[mid] < d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(docs) && docs[lo] == d {
		return lo, true
	}
	return 0, false
}

// sortDenseByUBDesc orders dense list indices by descending upper bound,
// ties by ascending index — deterministic refinement order.
func sortDenseByUBDesc(dord []int32, curs []pruneCursor) {
	for i := 1; i < len(dord); i++ {
		v := dord[i]
		j := i - 1
		for j >= 0 && (curs[dord[j]].ub < curs[v].ub ||
			(curs[dord[j]].ub == curs[v].ub && dord[j] > v)) {
			dord[j+1] = dord[j]
			j--
		}
		dord[j+1] = v
	}
}

// sortSparseByRatio orders cursor indices by ascending upper bound per
// posting (ub/df): the absorption order that buys the most skipped
// postings per unit of threshold budget. Compared via cross-
// multiplication (no division), ties by ascending index — deterministic.
// Insertion sort: n is small and the slice is reused across queries.
func sortSparseByRatio(ord []int32, curs []pruneCursor) {
	less := func(a, b int32) bool {
		ra := curs[a].ub * float64(len(curs[b].docs))
		rb := curs[b].ub * float64(len(curs[a].docs))
		if ra != rb {
			return ra < rb
		}
		return a < b
	}
	for i := 1; i < len(ord); i++ {
		v := ord[i]
		j := i - 1
		for j >= 0 && less(v, ord[j]) {
			ord[j+1] = ord[j]
			j--
		}
		ord[j+1] = v
	}
}

// finishExhaustive scores every document with index > from against the
// cursors' remaining postings using the classic accumulator — the same
// adds in the same canonical order as ever — and folds the results into
// the heap in ascending doc order (so tie resolution matches the pruned
// paths and the historical TopK exactly). from = -1 scores the whole
// corpus: that IS the exhaustive path Best/TopK always had.
func (c *Corpus) finishExhaustive(curs []pruneCursor, from int32, h matchHeap, k int, qnorm float64, statsOn bool, dead []uint64) matchHeap {
	nDocs := len(c.names)
	accp := getAcc(nDocs)
	defer accPool.Put(accp)
	acc := *accp
	start := int(from) + 1
	var visited uint64
	for i := 0; i < len(curs); {
		cur := &curs[i]
		cur.seek(from + 1)
		if len(cur.docs) != nDocs {
			docs, ws, qw := cur.docs[cur.pos:], cur.ws[cur.pos:], cur.qw
			visited += uint64(len(docs))
			for j, doc := range docs {
				acc[doc] += qw * ws[j]
			}
			i++
			continue
		}
		// Run of adjacent dense cursors: docs[j] == j, so each suffix is a
		// sequential fused walk with no index loads, and adjacent lists can
		// share one pass over the accumulator. Within the pass each
		// document's additions happen one list at a time in ascending
		// cursor order — the canonical order — so the sums stay
		// bit-identical to the one-list-at-a-time walk.
		run := i + 1
		for run < len(curs) && len(curs[run].docs) == nDocs {
			curs[run].seek(from + 1)
			run++
		}
		a := acc[start:]
		for ; i+3 < run; i += 4 {
			w0, q0 := curs[i].ws[start:], curs[i].qw
			w1, q1 := curs[i+1].ws[start:], curs[i+1].qw
			w2, q2 := curs[i+2].ws[start:], curs[i+2].qw
			w3, q3 := curs[i+3].ws[start:], curs[i+3].qw
			w0, w1, w2, w3 = w0[:len(a)], w1[:len(a)], w2[:len(a)], w3[:len(a)]
			// Two documents per step: each document's additions stay in
			// list order (the canonical order — bit-exactness), but the
			// two chains are independent, which hides the FP-add latency
			// the one-document-at-a-time walk stalls on.
			j := 0
			for ; j+1 < len(a); j += 2 {
				t0 := a[j] + q0*w0[j]
				t1 := a[j+1] + q0*w0[j+1]
				t0 += q1 * w1[j]
				t1 += q1 * w1[j+1]
				t0 += q2 * w2[j]
				t1 += q2 * w2[j+1]
				a[j] = t0 + q3*w3[j]
				a[j+1] = t1 + q3*w3[j+1]
			}
			if j < len(a) {
				t := a[j] + q0*w0[j]
				t += q1 * w1[j]
				t += q2 * w2[j]
				a[j] = t + q3*w3[j]
			}
			visited += uint64(4 * len(a))
		}
		for ; i < run; i++ {
			ws, qw := curs[i].ws[start:], curs[i].qw
			ws = ws[:len(a)]
			for j, w := range ws {
				a[j] += qw * w
			}
			visited += uint64(len(ws))
		}
	}
	if statsOn {
		pruneCounters.visited.Add(visited)
	}
	if k == 1 {
		// Single-best scan on raw accumulator values: the division by
		// qnorm is monotone, so it only needs to run when the raw maximum
		// improves — and when two raw values round to the same score, the
		// strict comparisons keep the earlier (lower) index, exactly the
		// heap's tie rule.
		bestRaw, bestScore, bestIdx := 0.0, 0.0, -1
		for i := start; i < nDocs; i++ {
			if a := acc[i]; a > bestRaw {
				if deadBit(dead, int32(i)) {
					continue // tombstoned: must not win or raise the bar
				}
				bestRaw = a
				if s := a / qnorm; s > bestScore {
					bestScore, bestIdx = s, i
				}
			}
		}
		if bestIdx >= 0 {
			pushMatch(&h, 1, Match{Name: c.names[bestIdx], Index: bestIdx, Score: bestScore})
		}
		return h
	}
	for i := start; i < nDocs; i++ {
		a := acc[i]
		if a == 0 || deadBit(dead, int32(i)) {
			continue
		}
		pushMatch(&h, k, Match{Name: c.names[i], Index: i, Score: a / qnorm})
	}
	return h
}
