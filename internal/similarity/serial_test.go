package similarity

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

func randomDoc(rng *rand.Rand, idx int) string {
	var sb bytes.Buffer
	fmt.Fprintf(&sb, "module m%d(input clk, output reg [7:0] q);\n", idx)
	for j := 0; j < 4+rng.Intn(12); j++ {
		fmt.Fprintf(&sb, "  wire [7:0] w%d_%d = q ^ 8'h%02X; // π\n", idx, j, rng.Intn(256))
	}
	sb.WriteString("endmodule\n")
	return sb.String()
}

// A decoded snapshot must answer every query bit-identically to the one
// that was encoded — Best, TopK, and BestBatch alike.
func TestSnapshotEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 40
	names := make([]string, n)
	texts := make([]string, n)
	for i := range texts {
		names[i] = fmt.Sprintf("doc%d.v", i)
		texts[i] = randomDoc(rng, i)
	}
	texts[5] = "" // empty document: no postings
	orig := SealCorpus(names, texts, 0)

	back, err := DecodeSnapshot(orig.EncodeSections())
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() {
		t.Fatalf("Len %d != %d", back.Len(), orig.Len())
	}
	queries := make([]string, 0, 30)
	for i := 0; i < 20; i++ {
		queries = append(queries, randomDoc(rng, 1000+i))
	}
	queries = append(queries, texts[0], texts[7], "", "garbage þ tokens")
	for qi, q := range queries {
		if got, want := back.Best(q), orig.Best(q); got != want {
			t.Fatalf("query %d: Best %+v != %+v", qi, got, want)
		}
		g, w := back.TopK(q, 5), orig.TopK(q, 5)
		if len(g) != len(w) {
			t.Fatalf("query %d: TopK len %d != %d", qi, len(g), len(w))
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("query %d: TopK[%d] %+v != %+v", qi, i, g[i], w[i])
			}
		}
	}
	gb, wb := back.BestBatch(0, queries), orig.BestBatch(0, queries)
	for i := range gb {
		if gb[i] != wb[i] {
			t.Fatalf("BestBatch[%d] %+v != %+v", i, gb[i], wb[i])
		}
	}
}

// Encoding is deterministic: the same snapshot encodes to the same bytes,
// and a decode/re-encode cycle is byte-identical.
func TestSnapshotEncodeDeterministic(t *testing.T) {
	names := []string{"a.v", "b.v"}
	texts := []string{
		"module a(input x, output y); assign y = ~x; endmodule",
		"module b(input x, output y); assign y = x; endmodule",
	}
	s1 := SealCorpus(names, texts, 0)
	e1 := s1.EncodeSections()
	e2 := s1.EncodeSections()
	for i := range e1 {
		if !bytes.Equal(e1[i], e2[i]) {
			t.Fatalf("section %d differs between encodes", i)
		}
	}
	back, err := DecodeSnapshot(e1)
	if err != nil {
		t.Fatal(err)
	}
	e3 := back.EncodeSections()
	for i := range e1 {
		if !bytes.Equal(e1[i], e3[i]) {
			t.Fatalf("section %d differs after decode/re-encode", i)
		}
	}
}

// Structurally broken sections must fail with ErrCorruptSnapshot, never
// panic and never build a half-valid index.
func TestDecodeSnapshotCorrupt(t *testing.T) {
	s := SealCorpus(
		[]string{"a.v", "b.v"},
		[]string{
			"module a(input x, output y); assign y = ~x; endmodule",
			"module b(input x, output y); assign y = x & x; endmodule",
		}, 0)
	good := s.EncodeSections()

	mutate := func(f func(secs [][]byte)) [][]byte {
		cp := make([][]byte, len(good))
		for i := range good {
			cp[i] = append([]byte(nil), good[i]...)
		}
		f(cp)
		return cp
	}
	cases := map[string][][]byte{
		"wrong section count": good[:3],
		"truncated names":     mutate(func(s [][]byte) { s[0] = s[0][:len(s[0])-1] }),
		"truncated terms":     mutate(func(s [][]byte) { s[1] = s[1][:len(s[1])/2] }),
		"truncated pairs":     mutate(func(s [][]byte) { s[2] = s[2][:len(s[2])-3] }),
		"truncated postings":  mutate(func(s [][]byte) { s[3] = s[3][:len(s[3])-5] }),
		"trailing garbage":    mutate(func(s [][]byte) { s[0] = append(s[0], 0xFF) }),
		"huge name count":     mutate(func(s [][]byte) { s[0][0], s[0][1], s[0][2], s[0][3] = 0xFF, 0xFF, 0xFF, 0x7F }),
		"doc out of range":    mutate(func(s [][]byte) { s[3][8] = 0xEE }),
	}
	for name, secs := range cases {
		if _, err := DecodeSnapshot(secs); !errors.Is(err, ErrCorruptSnapshot) {
			t.Errorf("%s: err = %v, want ErrCorruptSnapshot", name, err)
		}
	}
}
