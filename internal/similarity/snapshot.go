package similarity

import (
	"math/bits"
	"slices"

	"freehw/internal/par"
)

// Snapshot is an immutable, ordered set of segments with tombstones, safe
// for any number of concurrent readers. It is the unit the serving layer
// swaps RCU-style: build segments off to the side, compose a Snapshot,
// publish it through an atomic pointer, and in-flight queries keep
// answering against whichever snapshot they loaded — never a half-built
// index.
//
// Documents are globally indexed by LIVE rank: index i is the i-th live
// document in (segment-ordinal, doc-id) order. That is exactly the index
// a single-segment full rebuild of the live documents would assign, so
// Match.Index — and therefore tie-breaking, which prefers the lower
// index — is identical across any segmentation or merge state.
type Snapshot struct {
	segs  []snapSeg
	total int // total live documents
}

// snapSeg is one segment's read-side state inside a snapshot.
type snapSeg struct {
	seg    *Segment
	dead   []uint64 // immutable tombstone bitmap (nil = none); bit d of word d/64
	live   int      // live docs in this segment
	offset int      // global live rank of this segment's first live doc
	rank   []int32  // per 64-doc word: live docs before that word; nil when dead == nil
}

// newSnapshot composes segments and tombstone bitmaps into a snapshot,
// precomputing the live-rank tables. segs and deads are owned by the
// snapshot from here on (callers pass clones or immutable slices).
func newSnapshot(segs []*Segment, deads [][]uint64) *Snapshot {
	s := &Snapshot{segs: make([]snapSeg, len(segs))}
	for i, g := range segs {
		var dead []uint64
		if i < len(deads) {
			dead = deads[i]
		}
		ss := &s.segs[i]
		ss.seg = g
		ss.dead = dead
		ss.offset = s.total
		n := g.Docs()
		if dead == nil {
			ss.live = n
		} else {
			words := (n + 63) >> 6
			ss.rank = make([]int32, words)
			live := 0
			for w := 0; w < words; w++ {
				ss.rank[w] = int32(live)
				m := ^dead[w]
				if hi := n - w<<6; hi < 64 {
					m &= 1<<uint(hi) - 1 // bits past the last doc are not live
				}
				live += bits.OnesCount64(m)
			}
			ss.live = live
		}
		s.total += ss.live
	}
	return s
}

// liveRank maps a segment-local doc id to its live rank within the
// segment (the number of live docs before it). d must itself be live.
//
//freehw:hotpath
func (ss *snapSeg) liveRank(d int32) int {
	if ss.dead == nil {
		return int(d)
	}
	w := d >> 6
	return int(ss.rank[w]) + bits.OnesCount64(^ss.dead[w]&(1<<(uint32(d)&63)-1))
}

// selectLive maps a live rank back to the segment-local doc id — the
// inverse of liveRank. r must be in [0, live).
func (ss *snapSeg) selectLive(r int) int32 {
	if ss.dead == nil {
		return int32(r)
	}
	// Find the word containing the r-th live doc (rank is nondecreasing),
	// then select the bit within it.
	w := 0
	for w+1 < len(ss.rank) && int(ss.rank[w+1]) <= r {
		w++
	}
	need := r - int(ss.rank[w])
	m := ^ss.dead[w]
	for b := 0; b < 64; b++ {
		if m&(1<<uint(b)) != 0 {
			if need == 0 {
				return int32(w<<6 + b)
			}
			need--
		}
	}
	panic("similarity: live rank out of range")
}

// Seal freezes the corpus and returns its immutable read view as a
// single-segment snapshot. Sealing transfers ownership: any later Add on
// the underlying Corpus panics, so a writer cannot silently mutate an
// index that concurrent readers hold.
func (c *Corpus) Seal() *Snapshot {
	return newSnapshot([]*Segment{c.sealSegment()}, nil)
}

// SealCorpus builds and seals a corpus in one step (see NewCorpusWorkers).
func SealCorpus(names, texts []string, workers int) *Snapshot {
	return NewCorpusWorkers(names, texts, workers).Seal()
}

// SnapshotOf composes pre-built segments and tombstone bitmaps into a
// snapshot. The slices are cloned; the segments and bitmaps themselves
// must be immutable from here on.
func SnapshotOf(segs []*Segment, deads [][]uint64) *Snapshot {
	return newSnapshot(slices.Clone(segs), slices.Clone(deads))
}

// Len returns the number of live documents.
func (s *Snapshot) Len() int { return s.total }

// Segments returns the number of segments.
func (s *Snapshot) Segments() int { return len(s.segs) }

// Segment returns segment i (for persistence; immutable).
func (s *Snapshot) Segment(i int) *Segment { return s.segs[i].seg }

// SegmentDead returns segment i's tombstone bitmap (nil = none). The
// returned slice is shared and must not be mutated.
func (s *Snapshot) SegmentDead(i int) []uint64 { return s.segs[i].dead }

// SegmentLive returns the number of live documents in segment i.
func (s *Snapshot) SegmentLive(i int) int { return s.segs[i].live }

// Name returns the name of live document i.
func (s *Snapshot) Name(i int) string {
	for si := range s.segs {
		ss := &s.segs[si]
		if i < ss.offset+ss.live {
			return ss.seg.c.names[ss.selectLive(i-ss.offset)]
		}
	}
	panic("similarity: document index out of range")
}

// Best returns the closest live document to the query text, or
// Match{Name: "", Index: -1, Score: 0} when nothing scores above zero.
// Each segment runs the exact block-max scorer with its tombstone bitmap;
// candidates merge on (score descending, global index ascending) — the
// same tie rule as a single corpus, made consistent by the global
// live-rank indexing.
//
//freehw:hotpath
func (s *Snapshot) Best(text string) Match {
	if len(s.segs) == 1 && s.segs[0].dead == nil {
		// Single segment, no tombstones: the pre-segmentation fast path.
		return s.segs[0].seg.c.Best(text)
	}
	best := Match{Index: -1}
	for si := range s.segs {
		ss := &s.segs[si]
		if ss.live == 0 {
			continue
		}
		ms := ss.seg.c.searchTopKDead(text, 1, searchAuto, ss.dead)
		if len(ms) == 0 {
			continue
		}
		m := ms[0]
		m.Index = ss.offset + ss.liveRank(int32(m.Index))
		if best.Index < 0 || m.Score > best.Score {
			best = m
		}
	}
	return best
}

// TopK returns the k closest live matches, best first (score descending,
// index ascending on ties). Only documents sharing at least one term with
// the query qualify — identical semantics to Corpus.TopK.
//
//freehw:hotpath
func (s *Snapshot) TopK(text string, k int) []Match {
	if k <= 0 || s.total == 0 {
		return nil
	}
	if len(s.segs) == 1 && s.segs[0].dead == nil {
		return s.segs[0].seg.c.TopK(text, k)
	}
	var all []Match
	for si := range s.segs {
		ss := &s.segs[si]
		if ss.live == 0 {
			continue
		}
		ms := ss.seg.c.searchTopKDead(text, k, searchAuto, ss.dead)
		for _, m := range ms {
			m.Index = ss.offset + ss.liveRank(int32(m.Index))
			all = append(all, m)
		}
	}
	// Per-segment lists carry exact scores (bit-identical to the full
	// rebuild's), so a plain sort on (score desc, index asc) reproduces
	// the single-corpus heap order exactly.
	slices.SortFunc(all, func(a, b Match) int {
		if a.Score != b.Score {
			if a.Score > b.Score {
				return -1
			}
			return 1
		}
		return a.Index - b.Index
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// BestBatch scores a batch of queries in one pass over the snapshot:
// identical texts are deduplicated — generation pipelines resample the
// same candidate, and every duplicate shares one scoring — and the
// distinct queries fan out across at most workers goroutines (<= 0 means
// GOMAXPROCS). Each query resolves against the dictionary once and runs
// the exact Best accumulator walk, so results are byte-identical to
// calling Best per text, in input order.
func (s *Snapshot) BestBatch(workers int, texts []string) []Match {
	if len(texts) == 0 {
		return nil
	}
	if len(texts) == 1 {
		// Single query — the serving fast path: no dedup table, no
		// fan-out, same result.
		return []Match{s.Best(texts[0])}
	}
	slot := make([]int, len(texts))
	index := make(map[string]int, len(texts))
	var distinct []string
	for i, t := range texts {
		j, ok := index[t]
		if !ok {
			j = len(distinct)
			index[t] = j
			distinct = append(distinct, t)
		}
		slot[i] = j
	}
	scored := par.Map(workers, len(distinct), func(i int) Match {
		return s.Best(distinct[i])
	})
	out := make([]Match, len(texts))
	for i := range texts {
		out[i] = scored[slot[i]]
	}
	return out
}
