package similarity

import "freehw/internal/par"

// Snapshot is an immutable, sealed view of a Corpus, safe for any number
// of concurrent readers. It is the unit the serving layer swaps RCU-style:
// build a Corpus off to the side, Seal it, publish the Snapshot through an
// atomic pointer, and in-flight queries keep answering against whichever
// snapshot they loaded — never a half-built index.
type Snapshot struct {
	c *Corpus
}

// Seal freezes the corpus and returns its immutable read view. Sealing
// transfers ownership: any later Add on the underlying Corpus panics, so a
// writer cannot silently mutate an index that concurrent readers hold.
func (c *Corpus) Seal() *Snapshot {
	c.sealed = true
	if c.byteIDs == nil {
		c.buildByteIDs()
	}
	return &Snapshot{c: c}
}

// SealCorpus builds and seals a corpus in one step (see NewCorpusWorkers).
func SealCorpus(names, texts []string, workers int) *Snapshot {
	return NewCorpusWorkers(names, texts, workers).Seal()
}

// Len returns the number of indexed documents.
func (s *Snapshot) Len() int { return s.c.Len() }

// Name returns the name of document i.
func (s *Snapshot) Name(i int) string { return s.c.names[i] }

// Best returns the closest corpus document to the query text; identical to
// Corpus.Best on the sealed corpus.
func (s *Snapshot) Best(text string) Match { return s.c.Best(text) }

// TopK returns the k closest matches, best first; identical to
// Corpus.TopK on the sealed corpus.
func (s *Snapshot) TopK(text string, k int) []Match { return s.c.TopK(text, k) }

// BestBatch scores a batch of queries in one pass over the snapshot:
// identical texts are deduplicated — generation pipelines resample the
// same candidate, and every duplicate shares one scoring — and the
// distinct queries fan out across at most workers goroutines (<= 0 means
// GOMAXPROCS). Each query resolves against the dictionary once and runs
// the exact Best accumulator walk, so results are byte-identical to
// calling Best per text, in input order.
func (s *Snapshot) BestBatch(workers int, texts []string) []Match {
	if len(texts) == 0 {
		return nil
	}
	if len(texts) == 1 {
		// Single query — the serving fast path: no dedup table, no
		// fan-out, same result.
		return []Match{s.c.Best(texts[0])}
	}
	slot := make([]int, len(texts))
	index := make(map[string]int, len(texts))
	var distinct []string
	for i, t := range texts {
		j, ok := index[t]
		if !ok {
			j = len(distinct)
			index[t] = j
			distinct = append(distinct, t)
		}
		slot[i] = j
	}
	scored := par.Map(workers, len(distinct), func(i int) Match {
		return s.c.Best(distinct[i])
	})
	out := make([]Match, len(texts))
	for i := range texts {
		out[i] = scored[slot[i]]
	}
	return out
}
