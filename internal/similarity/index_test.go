package similarity

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// randDoc draws words from a small vocabulary so documents share many terms
// and the index's accumulators actually merge postings from most documents.
func randDoc(rng *rand.Rand, vocab, words int) string {
	var sb strings.Builder
	for i := 0; i < words; i++ {
		fmt.Fprintf(&sb, "tok%d ", rng.Intn(vocab))
		if rng.Intn(6) == 0 {
			sb.WriteString("; ")
		}
	}
	return sb.String()
}

// bruteBest is the reference implementation: full cosine scan, first
// strictly-greater score wins.
func bruteBest(names, texts []string, query string) Match {
	q := NewVector(query)
	best := Match{Index: -1}
	for i, text := range texts {
		s := Cosine(q, NewVector(text))
		if s > best.Score {
			best = Match{Name: names[i], Index: i, Score: s}
		}
	}
	return best
}

// The indexed Best must match a brute-force cosine scan on random corpora:
// same score within float tolerance, and the same document unless two
// documents tie at the top.
func TestIndexBestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(60)
		names := make([]string, n)
		texts := make([]string, n)
		for i := range texts {
			names[i] = fmt.Sprintf("d%d", i)
			texts[i] = randDoc(rng, 30+rng.Intn(100), 20+rng.Intn(150))
		}
		// Force duplicates so top-ties exercise the tie-break.
		if n > 10 {
			texts[7] = texts[2]
		}
		corpus := NewCorpus(names, texts)
		for q := 0; q < 10; q++ {
			var query string
			if q%3 == 0 {
				query = texts[rng.Intn(n)] // exact hit
			} else {
				query = randDoc(rng, 60, 10+rng.Intn(80))
			}
			got := corpus.Best(query)
			want := bruteBest(names, texts, query)
			if math.Abs(got.Score-want.Score) > 1e-9 {
				t.Fatalf("trial %d query %d: score %v != brute %v", trial, q, got.Score, want.Score)
			}
			if got.Index != want.Index {
				// Allowed only when the brute scores genuinely tie.
				qv := NewVector(query)
				alt := Cosine(qv, NewVector(texts[got.Index]))
				if math.Abs(alt-want.Score) > 1e-9 {
					t.Fatalf("trial %d query %d: index %d (%v) != brute %d (%v)",
						trial, q, got.Index, got.Score, want.Index, want.Score)
				}
			}
		}
	}
}

// The indexed TopK must return the same score sequence as sorting a full
// brute-force scan, for k below, at, and above the corpus size.
func TestIndexTopKMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	n := 40
	names := make([]string, n)
	texts := make([]string, n)
	for i := range texts {
		names[i] = fmt.Sprintf("d%d", i)
		texts[i] = randDoc(rng, 50, 30+rng.Intn(100))
	}
	texts[9] = texts[4] // exact duplicate: guaranteed score tie
	corpus := NewCorpus(names, texts)
	for q := 0; q < 15; q++ {
		query := randDoc(rng, 70, 10+rng.Intn(60))
		qv := NewVector(query)
		brute := make([]float64, n)
		for i, text := range texts {
			brute[i] = Cosine(qv, NewVector(text))
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(brute)))
		// Zero-cosine documents are not matches: TopK must truncate
		// rather than pad with arbitrary corpus entries.
		positive := 0
		for _, s := range brute {
			if s > 0 {
				positive++
			}
		}
		for _, k := range []int{1, 3, n, n + 5} {
			ms := corpus.TopK(query, k)
			wantLen := k
			if wantLen > positive {
				wantLen = positive
			}
			if len(ms) != wantLen {
				t.Fatalf("k=%d: got %d matches, want %d", k, len(ms), wantLen)
			}
			for i, m := range ms {
				if math.Abs(m.Score-brute[i]) > 1e-9 {
					t.Fatalf("k=%d rank %d: score %v != brute %v", k, i, m.Score, brute[i])
				}
				// Deterministic ordering contract: descending score, then
				// ascending index.
				if i > 0 {
					prev := ms[i-1]
					if m.Score > prev.Score+1e-12 ||
						(m.Score == prev.Score && m.Index < prev.Index) {
						t.Fatalf("k=%d: ordering violated at rank %d: %+v after %+v", k, i, m, prev)
					}
				}
			}
		}
	}
}

// Incremental Add must index documents identically to batch construction.
func TestIndexIncrementalAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	texts := make([]string, 20)
	names := make([]string, 20)
	for i := range texts {
		names[i] = fmt.Sprintf("d%d", i)
		texts[i] = randDoc(rng, 40, 50)
	}
	batch := NewCorpus(names, texts)
	inc := NewCorpus(nil, nil)
	for i := range texts {
		inc.Add(names[i], texts[i])
	}
	if batch.Len() != inc.Len() {
		t.Fatal("length mismatch")
	}
	for q := 0; q < 8; q++ {
		query := randDoc(rng, 40, 30)
		a, b := batch.Best(query), inc.Best(query)
		if a != b {
			t.Fatalf("query %d: %+v != %+v", q, a, b)
		}
	}
}

// Empty queries and empty corpora must stay well-defined.
func TestIndexDegenerateCases(t *testing.T) {
	empty := NewCorpus(nil, nil)
	if m := empty.Best("module m; endmodule"); m.Index != -1 || m.Score != 0 {
		t.Fatalf("empty corpus best = %+v", m)
	}
	if ms := empty.TopK("x", 3); len(ms) != 0 {
		t.Fatalf("empty corpus topk = %+v", ms)
	}
	c := NewCorpus([]string{"a"}, []string{"module a; endmodule"})
	if m := c.Best(""); m.Index != -1 || m.Score != 0 {
		t.Fatalf("empty query best = %+v", m)
	}
	// An empty query matches nothing; it must not surface score-0 entries.
	if ms := c.TopK("", 2); len(ms) != 0 {
		t.Fatalf("empty query topk = %+v", ms)
	}
	// A corpus containing an empty document must never match it.
	c2 := NewCorpus([]string{"e", "x"}, []string{"", "alpha beta gamma"})
	if m := c2.Best("alpha beta"); m.Index != 1 {
		t.Fatalf("best should skip empty doc: %+v", m)
	}
}

// benchCorpus mirrors BenchmarkCorpusBest's corpus for the brute-force
// baseline comparison.
func benchCorpus() ([]string, *Corpus) {
	rng := rand.New(rand.NewSource(1))
	texts := make([]string, 500)
	for i := range texts {
		var sb strings.Builder
		for j := 0; j < 150; j++ {
			fmt.Fprintf(&sb, "tok%d ", rng.Intn(400))
		}
		texts[i] = sb.String()
	}
	return texts, NewCorpus(nil, texts)
}

// BenchmarkCorpusBestBruteForce is the pre-index reference: one cosine per
// corpus document. Compare against BenchmarkCorpusBest (inverted index).
func BenchmarkCorpusBestBruteForce(b *testing.B) {
	texts, _ := benchCorpus()
	vecs := make([]Vector, len(texts))
	for i, text := range texts {
		vecs[i] = NewVector(text)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := NewVector(texts[i%len(texts)])
		best := Match{Index: -1}
		for j, v := range vecs {
			if s := Cosine(q, v); s > best.Score {
				best = Match{Index: j, Score: s}
			}
		}
	}
}

func BenchmarkCorpusTopK(b *testing.B) {
	texts, corpus := benchCorpus()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		corpus.TopK(texts[i%len(texts)], 10)
	}
}
