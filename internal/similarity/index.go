package similarity

import "slices"

// Index is the single-writer, mutable view of a segmented corpus: the
// publish path's working state. It owns the ordered segment list, the
// mutable tombstone bitmaps, and a name -> live-document map for O(1)
// removals. Mutations are copy-on-write at bitmap granularity — Snapshot
// never copies postings, and a bitmap is cloned only when a removal
// actually touches its segment — so publishing a delta costs O(delta +
// segments), never O(corpus).
//
// Concurrency contract: all Index methods require external serialization
// (the serving layer's publish lock). Snapshots returned by Snapshot()
// are immutable and safe to read concurrently with later mutations.
type Index struct {
	segs  []*Segment
	deads [][]uint64 // nil entries = no tombstones in that segment
	lives []int
	// byName maps a document name to its LIVE occurrences (duplicates
	// allowed, in publish order). Entries are removed on tombstoning, so
	// the map never grows stale.
	byName map[string][]docLoc
	pos    map[*Segment]int // segment -> current ordinal
}

// docLoc addresses one document: by segment pointer, not ordinal, so
// merges (which shift ordinals) do not invalidate entries wholesale.
type docLoc struct {
	seg *Segment
	doc int32
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{byName: map[string][]docLoc{}, pos: map[*Segment]int{}}
}

// IndexFromSnapshot rebuilds a writer index over a published snapshot's
// segments — the O(corpus) boot/rollback path (replay, rollback, and
// recovery after a failed persist). The snapshot's bitmaps are shared,
// never mutated: the first removal touching a segment clones its bitmap.
func IndexFromSnapshot(s *Snapshot) *Index {
	ix := NewIndex()
	for si := range s.segs {
		ss := &s.segs[si]
		ix.segs = append(ix.segs, ss.seg)
		ix.deads = append(ix.deads, ss.dead)
		ix.lives = append(ix.lives, ss.live)
		ix.pos[ss.seg] = si
		for d := int32(0); d < int32(ss.seg.Docs()); d++ {
			if deadBit(ss.dead, d) {
				continue
			}
			name := ss.seg.c.names[d]
			ix.byName[name] = append(ix.byName[name], docLoc{ss.seg, d})
		}
	}
	return ix
}

// Append adds a sealed segment to the end of the index.
func (ix *Index) Append(seg *Segment) {
	ix.pos[seg] = len(ix.segs)
	ix.segs = append(ix.segs, seg)
	ix.deads = append(ix.deads, nil)
	ix.lives = append(ix.lives, seg.Docs())
	for d := int32(0); d < int32(seg.Docs()); d++ {
		name := seg.c.names[d]
		ix.byName[name] = append(ix.byName[name], docLoc{seg, d})
	}
}

// Remove tombstones every live document whose name appears in names,
// returning how many documents were removed. Bitmaps are cloned before
// the first mutation per segment, so snapshots taken earlier are
// unaffected.
func (ix *Index) Remove(names []string) int {
	removed := 0
	cloned := map[int]bool{}
	for _, name := range names {
		locs := ix.byName[name]
		if len(locs) == 0 {
			continue
		}
		for _, loc := range locs {
			si := ix.pos[loc.seg]
			if !cloned[si] {
				words := (loc.seg.Docs() + 63) >> 6
				nd := make([]uint64, words)
				copy(nd, ix.deads[si])
				ix.deads[si] = nd
				cloned[si] = true
			}
			w, b := loc.doc>>6, uint32(loc.doc)&63
			if ix.deads[si][w]&(1<<b) == 0 {
				ix.deads[si][w] |= 1 << b
				ix.lives[si]--
				removed++
			}
		}
		delete(ix.byName, name)
	}
	return removed
}

// Live returns the total number of live documents.
func (ix *Index) Live() int {
	total := 0
	for _, l := range ix.lives {
		total += l
	}
	return total
}

// Segments returns the number of segments.
func (ix *Index) Segments() int { return len(ix.segs) }

// SegInfo returns segment i's total and live document counts.
func (ix *Index) SegInfo(i int) (docs, live int) {
	return ix.segs[i].Docs(), ix.lives[i]
}

// Run returns clones of the segment pointers and tombstone bitmaps for
// ordinals [i, j] — the immutable inputs MergeSegments consumes outside
// the publish lock. The bitmap slices are the index's current ones; the
// copy-on-write discipline in Remove keeps them stable.
func (ix *Index) Run(i, j int) ([]*Segment, [][]uint64) {
	return slices.Clone(ix.segs[i : j+1]), slices.Clone(ix.deads[i : j+1])
}

// RunStable reports whether ordinals [i, j] still hold exactly the given
// segments with the given bitmaps — the staleness check a merge performs
// after rebuilding outside the lock. Pointer equality suffices: segments
// are immutable and bitmaps are copy-on-write, so any concurrent change
// swaps the pointers.
func (ix *Index) RunStable(i, j int, segs []*Segment, deads [][]uint64) bool {
	if i < 0 || j >= len(ix.segs) || j-i+1 != len(segs) {
		return false
	}
	for k := range segs {
		if ix.segs[i+k] != segs[k] || !sameBitmap(ix.deads[i+k], deads[k]) {
			return false
		}
	}
	return true
}

// sameBitmap reports pointer-level identity of two bitmaps (both nil, or
// same backing array and length).
func sameBitmap(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}

// ReplaceRun splices the merged segment in place of ordinals [i, j]
// (inclusive). merged must hold exactly the run's live documents in
// (ordinal, doc-id) order — MergeSegments guarantees that — or, when the
// run is entirely tombstoned, merged may be nil to drop it outright.
func (ix *Index) ReplaceRun(i, j int, merged *Segment) {
	if merged == nil {
		for si := i; si <= j; si++ {
			if ix.lives[si] != 0 {
				panic("similarity: dropping a run with live documents")
			}
		}
	} else {
		// Repoint the live documents' byName entries at the merged
		// segment. Live docs of the run, in (ordinal, doc-id) order, map
		// to merged-local ids 0..merged.Docs()-1 — the same renumbering
		// MergeSegments applied.
		local := int32(0)
		for si := i; si <= j; si++ {
			seg, dead := ix.segs[si], ix.deads[si]
			for d := int32(0); d < int32(seg.Docs()); d++ {
				if deadBit(dead, d) {
					continue
				}
				locs := ix.byName[seg.c.names[d]]
				for li := range locs {
					if locs[li].seg == seg && locs[li].doc == d {
						locs[li] = docLoc{merged, local}
						break
					}
				}
				local++
			}
		}
		if int(local) != merged.Docs() {
			panic("similarity: merged segment live-doc count mismatch")
		}
	}
	var segs []*Segment
	var deads [][]uint64
	var lives []int
	segs = append(segs, ix.segs[:i]...)
	deads = append(deads, ix.deads[:i]...)
	lives = append(lives, ix.lives[:i]...)
	if merged != nil {
		segs = append(segs, merged)
		deads = append(deads, nil)
		lives = append(lives, merged.Docs())
	}
	segs = append(segs, ix.segs[j+1:]...)
	deads = append(deads, ix.deads[j+1:]...)
	lives = append(lives, ix.lives[j+1:]...)
	ix.segs, ix.deads, ix.lives = segs, deads, lives
	ix.pos = make(map[*Segment]int, len(segs))
	for si, g := range segs {
		ix.pos[g] = si
	}
}

// Snapshot composes the current state into an immutable read view.
// O(segments): segment postings are shared, bitmaps are shared under the
// copy-on-write discipline.
func (ix *Index) Snapshot() *Snapshot {
	return newSnapshot(slices.Clone(ix.segs), slices.Clone(ix.deads))
}
