package similarity

// Background merge: compact an adjacent run of segments into one, dropping
// tombstoned documents, WITHOUT the source texts. The merged segment is
// rebuilt purely from the inputs' dictionaries and postings — per-document
// weights are copied verbatim (raw float64s, never recomputed), documents
// are renumbered to their live rank within the run, and dictionary entries
// are re-interned in (segment-ordinal, doc-id, within-doc) first-use order.
// Because scoring is corpus-dictionary-independent (see segment.go), the
// merged segment produces bit-identical verdicts to the inputs.

// mergeBuf accumulates one merged posting list; docs arrive ascending by
// construction (see MergeSegments), so no sort is needed.
type mergeBuf struct {
	docs []int32
	ws   []float64
}

// MergeSegments compacts segs[0..n-1] (an adjacent run, in snapshot order)
// with their tombstone bitmaps into a single fresh segment holding only
// the live documents, renumbered 0..live-1 in (ordinal, doc-id) order.
// Returns nil when no document is live. Runs entirely on immutable inputs,
// so it is safe outside any lock; the caller revalidates the run before
// splicing the result in (see Index.RunStable / ReplaceRun).
//
//freehw:hotpath
func MergeSegments(segs []*Segment, deads [][]uint64) *Segment {
	out := &Corpus{termIDs: map[string]int32{}, pairIDs: map[uint64]int32{}}
	var bufs []mergeBuf

	next := int32(0) // merged doc id being assigned
	for si, g := range segs {
		var dead []uint64
		if si < len(deads) {
			dead = deads[si]
		}
		src := g.c

		// Recover the segment's dictionaries as id-indexed arrays. Index
		// assignment into preallocated slices keeps map iteration order
		// irrelevant (freehw-vet: mapord).
		terms := make([]string, len(src.postings))
		pairs := make([]uint64, len(src.postings))
		isPair := make([]bool, len(src.postings))
		for t, id := range src.termIDs {
			terms[id] = t
		}
		for k, id := range src.pairIDs {
			pairs[id] = k
			isPair[id] = true
		}

		// Map each live source doc to its merged id.
		remap := make([]int32, src.Len())
		for d := int32(0); d < int32(src.Len()); d++ {
			if deadBit(dead, d) {
				remap[d] = -1
				continue
			}
			remap[d] = next
			next++
			out.names = append(out.names, src.names[d])
		}

		// Re-intern postings ids in ascending source-id order. Within a
		// document, every bigram was interned after its component unigrams
		// (addToks adds unigrams first), so when we reach a bigram id, both
		// component terms of any LIVE occurrence already exist in out —
		// srcToOut resolves them. Lists whose docs are all tombstoned are
		// dropped entirely; a bigram over such a list cannot have a live
		// occurrence either, so the skip is safe.
		srcToOut := make([]int32, len(src.postings))
		for id := range src.postings {
			srcToOut[id] = -1
		}
		for id := 0; id < len(src.postings); id++ {
			pl := &src.postings[id]
			var buf *mergeBuf
			var outID int32 = -1
			for j, d := range pl.docs {
				nd := remap[d]
				if nd < 0 {
					continue
				}
				if outID < 0 {
					outID = mergeIntern(out, id, terms, pairs, isPair, srcToOut)
					if outID < 0 {
						break // unreachable for a live doc; defensive
					}
					srcToOut[id] = outID
					for int(outID) >= len(bufs) {
						bufs = append(bufs, mergeBuf{})
					}
					buf = &bufs[outID]
				}
				buf.docs = append(buf.docs, nd)
				buf.ws = append(buf.ws, pl.ws[j])
			}
		}
	}

	if next == 0 {
		return nil
	}

	// Assemble posting lists. Each buffer's docs are already ascending:
	// per source segment they ascend (remap is monotone over live docs),
	// and later segments' remapped ids all exceed earlier segments'.
	out.postings = make([]postingList, len(bufs))
	for i := range bufs {
		pl := &out.postings[i]
		pl.docs = bufs[i].docs
		pl.ws = bufs[i].ws
		pl.rebuildBlockMeta()
	}
	return out.sealSegment()
}

// mergeIntern assigns (or finds) the merged-corpus postings id for source
// id, given the source's id-indexed dictionaries. For a bigram, both
// component unigrams must already be interned in out — guaranteed by the
// ascending-id merge order whenever the bigram has a live occurrence.
// Returns -1 if a component is missing (only possible for fully-dead
// lists, which the caller never interns).
func mergeIntern(out *Corpus, id int, terms []string, pairs []uint64, isPair []bool, srcToOut []int32) int32 {
	if !isPair[id] {
		t := terms[id]
		if outID, ok := out.termIDs[t]; ok {
			return outID
		}
		outID := int32(len(out.postings))
		out.termIDs[t] = outID
		out.postings = append(out.postings, postingList{})
		return outID
	}
	a := int32(pairs[id] >> 32)
	b := int32(uint32(pairs[id]))
	oa, ob := srcToOut[a], srcToOut[b]
	if oa < 0 || ob < 0 {
		return -1
	}
	key := pairKey(oa, ob)
	if outID, ok := out.pairIDs[key]; ok {
		return outID
	}
	outID := int32(len(out.postings))
	out.pairIDs[key] = outID
	out.postings = append(out.postings, postingList{})
	return outID
}
