// Package similarity implements the paper's copyright-infringement metric
// (§III-A): generated code is compared against a corpus of copyright-
// protected files using cosine similarity over term-frequency vectors; a
// score of 0.8 or higher marks the generation as originating from the
// protected corpus.
//
// Corpus lookups run on an inverted index (term -> postings with
// precomputed unit-normalized weights) with accumulator-based scoring, so a
// query touches only the postings of its own terms instead of intersecting
// its term map against every document vector. Cosine and NewVector remain
// as the reference implementation; index_test.go proves the index
// equivalent to a brute-force cosine scan on random corpora.
package similarity

import (
	"container/heap"
	"math"
	"slices"
	"strings"
	"unicode/utf8"

	"freehw/internal/par"
)

// DefaultThreshold is the paper's violation threshold.
const DefaultThreshold = 0.8

// Vector is a sparse TF vector keyed by term hash, pre-normalized to unit
// length at construction.
type Vector struct {
	terms map[string]float64
	norm  float64
}

// tokens streams Tokenize's terms to fn without materializing the slice —
// the zero-allocation core the query path iterates (substrings share the
// input's backing array; ToLower only allocates when a token actually
// carries upper case).
func tokens(text string, fn func(string)) {
	i := 0
	n := len(text)
	isWord := func(c byte) bool {
		return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '\''
	}
	for i < n {
		c := text[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case isWord(c):
			start := i
			for i < n && isWord(text[i]) {
				i++
			}
			fn(strings.ToLower(text[start:i]))
		case c < utf8.RuneSelf:
			fn(text[i : i+1])
			i++
		default:
			r, size := utf8.DecodeRuneInString(text[i:])
			if r == utf8.RuneError && size <= 1 {
				fn(text[i : i+1]) // invalid byte, kept verbatim
				i++
				break
			}
			fn(strings.ToLower(text[i : i+size]))
			i += size
		}
	}
}

// Tokenize splits code into comparison terms: identifiers/keywords, numbers,
// and operator glyphs. Whitespace and formatting differences vanish, so
// reformatted copies still match. Non-ASCII runes (comments, exotic
// identifiers) are emitted whole, one term per rune — splitting them into
// bytes would make every multi-byte script share continuation-byte terms
// and spuriously correlate unrelated files. Invalid UTF-8 bytes stay
// single-byte terms.
func Tokenize(text string) []string {
	var out []string
	tokens(text, func(t string) { out = append(out, t) })
	return out
}

// termCounts builds the unigram+bigram term frequencies of text. order
// lists the distinct terms in first-appearance order, giving every
// consumer a deterministic iteration sequence.
func termCounts(text string) (counts map[string]float64, order []string) {
	toks := Tokenize(text)
	counts = make(map[string]float64, len(toks)*2)
	order = make([]string, 0, len(toks)*2)
	bump := func(t string) {
		if _, ok := counts[t]; !ok {
			order = append(order, t)
		}
		counts[t]++
	}
	for i, t := range toks {
		bump(t)
		if i+1 < len(toks) {
			bump(t + "\x00" + toks[i+1])
		}
	}
	return counts, order
}

func normOf(counts map[string]float64) float64 {
	var sum float64
	for _, f := range counts {
		sum += f * f
	}
	return math.Sqrt(sum)
}

// NewVector builds a unit-normalized TF vector over word unigrams and
// bigrams. Bigrams give the metric sensitivity to local structure so that
// different modules built from the same keyword vocabulary do not collide.
func NewVector(text string) Vector {
	counts, _ := termCounts(text)
	return Vector{terms: counts, norm: normOf(counts)}
}

// Cosine returns the cosine similarity in [0,1].
func Cosine(a, b Vector) float64 {
	if a.norm == 0 || b.norm == 0 {
		return 0
	}
	small, large := a.terms, b.terms
	if len(small) > len(large) {
		small, large = large, small
	}
	var dot float64
	for t, f := range small {
		if g, ok := large[t]; ok {
			dot += f * g
		}
	}
	return dot / (a.norm * b.norm)
}

// postingList holds one term's postings as parallel arrays — documents and
// tf(term, doc)/norm(doc) weights — so the accumulator walk streams 12
// packed bytes per posting instead of a padded 16-byte struct, and a dot
// product against raw query counts needs only the query norm at the end.
type postingList struct {
	docs []int32
	ws   []float64
}

func (pl *postingList) add(doc int32, w float64) {
	pl.docs = append(pl.docs, doc)
	pl.ws = append(pl.ws, w)
}

// Corpus is an indexed collection of protected documents. Unigram terms
// are interned as int32 postings ids; bigrams are keyed by the pair of
// their unigram ids, so neither indexing nor querying ever materializes a
// concatenated bigram string — the dominant cost of the pre-PR-5 query
// path. A Corpus under construction is single-writer: Add must not race
// with reads. Seal it into a Snapshot for concurrent serving.
type Corpus struct {
	names    []string
	termIDs  map[string]int32 // unigram term -> postings id
	pairIDs  map[uint64]int32 // unigram id pair -> bigram postings id
	postings []postingList    // unigrams and bigrams share one id space
	sealed   bool
}

// NewCorpus builds a corpus; names and texts run in parallel. See
// NewCorpusWorkers.
func NewCorpus(names, texts []string) *Corpus {
	return NewCorpusWorkers(names, texts, 0)
}

// NewCorpusWorkers builds a corpus with bounded concurrency (workers <= 0
// means GOMAXPROCS). Per-document tokenization fans out; dictionary
// interning and index insertion stay sequential in document order, so the
// built index is identical regardless of worker count.
func NewCorpusWorkers(names, texts []string, workers int) *Corpus {
	c := &Corpus{termIDs: map[string]int32{}, pairIDs: map[uint64]int32{}}
	tokLists := par.Map(workers, len(texts), func(i int) []string {
		return Tokenize(texts[i])
	})
	for i, toks := range tokLists {
		name := ""
		if i < len(names) {
			name = names[i]
		}
		c.addToks(name, toks)
		tokLists[i] = nil // release each document's tokens as it lands
	}
	return c
}

// Add appends one document to the index.
func (c *Corpus) Add(name, text string) {
	c.addToks(name, Tokenize(text))
}

// uniID interns a unigram term, assigning the next postings id on first
// sight.
func (c *Corpus) uniID(t string) int32 {
	id, ok := c.termIDs[t]
	if !ok {
		id = int32(len(c.postings))
		c.termIDs[t] = id
		c.postings = append(c.postings, postingList{})
	}
	return id
}

// pairKey packs two unigram ids into the bigram dictionary key.
func pairKey(a, b int32) uint64 {
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// pairID interns a bigram by its unigram id pair.
func (c *Corpus) pairID(a, b int32) int32 {
	k := pairKey(a, b)
	id, ok := c.pairIDs[k]
	if !ok {
		id = int32(len(c.postings))
		c.pairIDs[k] = id
		c.postings = append(c.postings, postingList{})
	}
	return id
}

func (c *Corpus) addToks(name string, toks []string) {
	if c.sealed {
		panic("similarity: Add on a sealed Corpus")
	}
	doc := int32(len(c.names))
	c.names = append(c.names, name)
	if len(toks) == 0 {
		return // empty document: no postings, unreachable by any query
	}
	tids := make([]int32, len(toks))
	for i, t := range toks {
		tids[i] = c.uniID(t)
	}
	counts := make(map[int32]float64, 2*len(toks))
	order := make([]int32, 0, 2*len(toks))
	bump := func(id int32) {
		if _, ok := counts[id]; !ok {
			order = append(order, id)
		}
		counts[id]++
	}
	for i, id := range tids {
		bump(id)
		if i+1 < len(tids) {
			bump(c.pairID(id, tids[i+1]))
		}
	}
	// Counts are integers, so the norm is exact regardless of sum order.
	var sum float64
	for _, v := range counts {
		sum += v * v
	}
	norm := math.Sqrt(sum)
	for _, id := range order {
		c.postings[id].add(doc, counts[id]/norm)
	}
}

// Len returns the number of indexed documents.
func (c *Corpus) Len() int { return len(c.names) }

// Match is the best corpus match for a query.
type Match struct {
	Name  string
	Index int
	Score float64
}

// unknownBase is the first effective id assigned to query tokens absent
// from the corpus dictionary (corpus ids are int32, so they stay below).
const unknownBase = uint64(1) << 31

// A resolved query term packs a postings id (upper 32 bits) and its
// integer query count (lower 32 bits) into one uint64, so the term list
// sorts by id with slices.Sort — no interface or closure per comparison.
func qtermID(qt uint64) int32   { return int32(qt >> 32) }
func qtermW(qt uint64) float64  { return float64(uint32(qt)) }
func packQterm(id int32, w float64) uint64 {
	return uint64(uint32(id))<<32 | uint64(uint32(w))
}

// resolveQuery streams a query's tokens and resolves them against the
// index in one pass: the returned terms are the query's corpus-known
// unigrams and bigrams with their counts, sorted by postings id — the
// canonical accumulation order every scoring path shares, which is what
// keeps Best, TopK, and BestBatch byte-identical to each other. qnorm is
// the norm over ALL query terms, corpus-known or not. A token the corpus
// has never seen cannot appear in any corpus bigram either, so its
// bigrams are skipped without a lookup.
func (c *Corpus) resolveQuery(text string) (qts []uint64, qnorm float64) {
	// Emit one key per unigram and bigram occurrence, then sort and
	// run-length count — cheaper than a hash map at query term counts.
	// Unigram keys are the effective id (< 2^32, dictionary id or interned
	// unknown), bigram keys pack the pair shifted into the upper half
	// (>= 2^32), so the two ranges cannot collide.
	var unknown map[string]uint64
	keys := make([]uint64, 0, 512)
	prev, seen := uint64(0), false
	tokens(text, func(t string) {
		var e uint64
		if id, ok := c.termIDs[t]; ok {
			e = uint64(id)
		} else {
			if unknown == nil {
				unknown = make(map[string]uint64)
			}
			lid, have := unknown[t]
			if !have {
				lid = unknownBase + uint64(len(unknown))
				unknown[t] = lid
			}
			e = lid
		}
		keys = append(keys, e)
		if seen {
			keys = append(keys, (prev+1)<<32|e)
		}
		prev, seen = e, true
	})
	if !seen {
		return nil, 0
	}
	slices.Sort(keys)
	var sum float64
	qts = make([]uint64, 0, 128)
	for i := 0; i < len(keys); {
		j := i + 1
		for j < len(keys) && keys[j] == keys[i] {
			j++
		}
		v := float64(j - i)
		sum += v * v // integer counts: exact in any order
		k := keys[i]
		i = j
		switch {
		case k < unknownBase: // corpus-known unigram
			qts = append(qts, packQterm(int32(k), v))
		case k < 1<<32: // unknown unigram
		default: // bigram
			a, b := (k>>32)-1, k&0xffffffff
			if a < unknownBase && b < unknownBase {
				if id, ok := c.pairIDs[a<<32|b]; ok {
					qts = append(qts, packQterm(id, v))
				}
			}
		}
	}
	slices.Sort(qts)
	return qts, math.Sqrt(sum)
}

// score accumulates per-document dot products for the query's terms, in
// ascending postings-id order. Only documents sharing at least one term
// with the query are touched; the returned accumulator holds
// dot(query, doc)/norm(doc), so dividing by the query norm yields cosine.
// qnorm is 0 for empty queries.
func (c *Corpus) score(text string) (acc []float64, qnorm float64) {
	qts, qnorm := c.resolveQuery(text)
	if qnorm == 0 || len(c.names) == 0 {
		return nil, qnorm
	}
	acc = make([]float64, len(c.names))
	for _, qt := range qts {
		w := qtermW(qt)
		pl := &c.postings[qtermID(qt)]
		docs := pl.docs
		ws := pl.ws[:len(docs)] // one bound, checks eliminated below
		for k, doc := range docs {
			acc[doc] += w * ws[k]
		}
	}
	return acc, qnorm
}

// Best returns the closest corpus document to the query text. Ties resolve
// to the lowest document index.
func (c *Corpus) Best(text string) Match {
	acc, qnorm := c.score(text)
	best := Match{Index: -1}
	for i, dot := range acc {
		if s := dot / qnorm; s > best.Score {
			best = Match{Name: c.names[i], Index: i, Score: s}
		}
	}
	return best
}

// matchWorse orders matches weakest-first: lower score, then higher index
// (ties keep the lower document index).
func matchWorse(a, b Match) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Index > b.Index
}

// matchHeap is a bounded min-heap whose root is the weakest kept match.
type matchHeap []Match

func (h matchHeap) Len() int           { return len(h) }
func (h matchHeap) Less(i, j int) bool { return matchWorse(h[i], h[j]) }
func (h matchHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *matchHeap) Push(x any)        { *h = append(*h, x.(Match)) }
func (h *matchHeap) Pop() any {
	old := *h
	n := len(old)
	m := old[n-1]
	*h = old[:n-1]
	return m
}

// TopK returns the k closest matches, best first (score descending, index
// ascending on ties), using a bounded heap instead of sorting every score.
// Only documents that share at least one term with the query qualify: a
// zero cosine is "no match", so the result holds min(k, matching docs)
// entries rather than padding with arbitrary low-index corpus files.
func (c *Corpus) TopK(text string, k int) []Match {
	if k <= 0 {
		return nil
	}
	acc, qnorm := c.score(text)
	if acc == nil {
		return nil
	}
	h := make(matchHeap, 0, k)
	for i := range c.names {
		s := acc[i] / qnorm
		if s == 0 {
			continue
		}
		m := Match{Name: c.names[i], Index: i, Score: s}
		if len(h) < k {
			heap.Push(&h, m)
		} else if matchWorse(h[0], m) {
			h[0] = m
			heap.Fix(&h, 0)
		}
	}
	out := make([]Match, len(h))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(Match)
	}
	return out
}
