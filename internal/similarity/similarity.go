// Package similarity implements the paper's copyright-infringement metric
// (§III-A): generated code is compared against a corpus of copyright-
// protected files using cosine similarity over term-frequency vectors; a
// score of 0.8 or higher marks the generation as originating from the
// protected corpus.
//
// Corpus lookups run on an inverted index (term -> postings with
// precomputed unit-normalized weights) with accumulator-based scoring, so a
// query touches only the postings of its own terms instead of intersecting
// its term map against every document vector. Cosine and NewVector remain
// as the reference implementation; index_test.go proves the index
// equivalent to a brute-force cosine scan on random corpora.
package similarity

import (
	"container/heap"
	"math"
	"strings"
	"unicode/utf8"

	"freehw/internal/par"
)

// DefaultThreshold is the paper's violation threshold.
const DefaultThreshold = 0.8

// Vector is a sparse TF vector keyed by term hash, pre-normalized to unit
// length at construction.
type Vector struct {
	terms map[string]float64
	norm  float64
}

// Tokenize splits code into comparison terms: identifiers/keywords, numbers,
// and operator glyphs. Whitespace and formatting differences vanish, so
// reformatted copies still match. Non-ASCII runes (comments, exotic
// identifiers) are emitted whole, one term per rune — splitting them into
// bytes would make every multi-byte script share continuation-byte terms
// and spuriously correlate unrelated files. Invalid UTF-8 bytes stay
// single-byte terms.
func Tokenize(text string) []string {
	var out []string
	i := 0
	n := len(text)
	isWord := func(c byte) bool {
		return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '\''
	}
	for i < n {
		c := text[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case isWord(c):
			start := i
			for i < n && isWord(text[i]) {
				i++
			}
			out = append(out, strings.ToLower(text[start:i]))
		case c < utf8.RuneSelf:
			out = append(out, text[i:i+1])
			i++
		default:
			r, size := utf8.DecodeRuneInString(text[i:])
			if r == utf8.RuneError && size <= 1 {
				out = append(out, text[i:i+1]) // invalid byte, kept verbatim
				i++
				break
			}
			out = append(out, strings.ToLower(text[i:i+size]))
			i += size
		}
	}
	return out
}

// termCounts builds the unigram+bigram term frequencies of text. order
// lists the distinct terms in first-appearance order, giving every
// consumer a deterministic iteration sequence.
func termCounts(text string) (counts map[string]float64, order []string) {
	toks := Tokenize(text)
	counts = make(map[string]float64, len(toks)*2)
	order = make([]string, 0, len(toks)*2)
	bump := func(t string) {
		if _, ok := counts[t]; !ok {
			order = append(order, t)
		}
		counts[t]++
	}
	for i, t := range toks {
		bump(t)
		if i+1 < len(toks) {
			bump(t + "\x00" + toks[i+1])
		}
	}
	return counts, order
}

func normOf(counts map[string]float64) float64 {
	var sum float64
	for _, f := range counts {
		sum += f * f
	}
	return math.Sqrt(sum)
}

// NewVector builds a unit-normalized TF vector over word unigrams and
// bigrams. Bigrams give the metric sensitivity to local structure so that
// different modules built from the same keyword vocabulary do not collide.
func NewVector(text string) Vector {
	counts, _ := termCounts(text)
	return Vector{terms: counts, norm: normOf(counts)}
}

// Cosine returns the cosine similarity in [0,1].
func Cosine(a, b Vector) float64 {
	if a.norm == 0 || b.norm == 0 {
		return 0
	}
	small, large := a.terms, b.terms
	if len(small) > len(large) {
		small, large = large, small
	}
	var dot float64
	for t, f := range small {
		if g, ok := large[t]; ok {
			dot += f * g
		}
	}
	return dot / (a.norm * b.norm)
}

// posting is one document's weight for one term: tf(term, doc) divided by
// the document norm, so a dot product against raw query counts needs only
// the query norm at the end.
type posting struct {
	doc int32
	w   float64
}

// Corpus is an indexed collection of protected documents. A Corpus under
// construction is single-writer: Add must not race with reads. Seal it
// into a Snapshot for concurrent serving.
type Corpus struct {
	names    []string
	termIDs  map[string]int32
	postings [][]posting
	sealed   bool
}

// NewCorpus builds a corpus; names and texts run in parallel. See
// NewCorpusWorkers.
func NewCorpus(names, texts []string) *Corpus {
	return NewCorpusWorkers(names, texts, 0)
}

// NewCorpusWorkers builds a corpus with bounded concurrency (workers <= 0
// means GOMAXPROCS). Per-document term counting fans out; index insertion
// stays sequential in document order, so the built index is identical
// regardless of worker count.
func NewCorpusWorkers(names, texts []string, workers int) *Corpus {
	c := &Corpus{termIDs: map[string]int32{}}
	type prepped struct {
		counts map[string]float64
		order  []string
	}
	preps := par.Map(workers, len(texts), func(i int) prepped {
		counts, order := termCounts(texts[i])
		return prepped{counts: counts, order: order}
	})
	for i, p := range preps {
		name := ""
		if i < len(names) {
			name = names[i]
		}
		c.addCounts(name, p.counts, p.order)
	}
	return c
}

// Add appends one document to the index.
func (c *Corpus) Add(name, text string) {
	counts, order := termCounts(text)
	c.addCounts(name, counts, order)
}

func (c *Corpus) addCounts(name string, counts map[string]float64, order []string) {
	if c.sealed {
		panic("similarity: Add on a sealed Corpus")
	}
	id := int32(len(c.names))
	c.names = append(c.names, name)
	norm := normOf(counts)
	if norm == 0 {
		return // empty document: no postings, unreachable by any query
	}
	for _, t := range order {
		tid, ok := c.termIDs[t]
		if !ok {
			tid = int32(len(c.postings))
			c.termIDs[t] = tid
			c.postings = append(c.postings, nil)
		}
		c.postings[tid] = append(c.postings[tid], posting{doc: id, w: counts[t] / norm})
	}
}

// Len returns the number of indexed documents.
func (c *Corpus) Len() int { return len(c.names) }

// Match is the best corpus match for a query.
type Match struct {
	Name  string
	Index int
	Score float64
}

// score accumulates per-document dot products for the query's terms. Only
// documents sharing at least one term with the query are touched; the
// returned accumulator holds dot(query, doc)/norm(doc), so dividing by the
// query norm yields cosine. qnorm is 0 for empty queries.
func (c *Corpus) score(text string) (acc []float64, qnorm float64) {
	counts, order := termCounts(text)
	qnorm = normOf(counts)
	if qnorm == 0 || len(c.names) == 0 {
		return nil, qnorm
	}
	acc = make([]float64, len(c.names))
	for _, t := range order {
		tid, ok := c.termIDs[t]
		if !ok {
			continue
		}
		qw := counts[t]
		for _, p := range c.postings[tid] {
			acc[p.doc] += qw * p.w
		}
	}
	return acc, qnorm
}

// Best returns the closest corpus document to the query text. Ties resolve
// to the lowest document index.
func (c *Corpus) Best(text string) Match {
	acc, qnorm := c.score(text)
	best := Match{Index: -1}
	for i, dot := range acc {
		if s := dot / qnorm; s > best.Score {
			best = Match{Name: c.names[i], Index: i, Score: s}
		}
	}
	return best
}

// matchWorse orders matches weakest-first: lower score, then higher index
// (ties keep the lower document index).
func matchWorse(a, b Match) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Index > b.Index
}

// matchHeap is a bounded min-heap whose root is the weakest kept match.
type matchHeap []Match

func (h matchHeap) Len() int           { return len(h) }
func (h matchHeap) Less(i, j int) bool { return matchWorse(h[i], h[j]) }
func (h matchHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *matchHeap) Push(x any)        { *h = append(*h, x.(Match)) }
func (h *matchHeap) Pop() any {
	old := *h
	n := len(old)
	m := old[n-1]
	*h = old[:n-1]
	return m
}

// TopK returns the k closest matches, best first (score descending, index
// ascending on ties), using a bounded heap instead of sorting every score.
// Only documents that share at least one term with the query qualify: a
// zero cosine is "no match", so the result holds min(k, matching docs)
// entries rather than padding with arbitrary low-index corpus files.
func (c *Corpus) TopK(text string, k int) []Match {
	if k <= 0 {
		return nil
	}
	acc, qnorm := c.score(text)
	if acc == nil {
		return nil
	}
	h := make(matchHeap, 0, k)
	for i := range c.names {
		s := acc[i] / qnorm
		if s == 0 {
			continue
		}
		m := Match{Name: c.names[i], Index: i, Score: s}
		if len(h) < k {
			heap.Push(&h, m)
		} else if matchWorse(h[0], m) {
			h[0] = m
			heap.Fix(&h, 0)
		}
	}
	out := make([]Match, len(h))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(Match)
	}
	return out
}
