// Package similarity implements the paper's copyright-infringement metric
// (§III-A): generated code is compared against a corpus of copyright-
// protected files using cosine similarity over term-frequency vectors; a
// score of 0.8 or higher marks the generation as originating from the
// protected corpus.
//
// Corpus lookups run on an inverted index (term -> postings with
// precomputed unit-normalized weights) with accumulator-based scoring, so a
// query touches only the postings of its own terms instead of intersecting
// its term map against every document vector. Cosine and NewVector remain
// as the reference implementation; index_test.go proves the index
// equivalent to a brute-force cosine scan on random corpora.
package similarity

import (
	"math"
	"strings"
	"sync"
	"unicode/utf8"

	"freehw/internal/par"
)

// DefaultThreshold is the paper's violation threshold.
const DefaultThreshold = 0.8

// Vector is a sparse TF vector keyed by term hash, pre-normalized to unit
// length at construction.
type Vector struct {
	terms map[string]float64
	norm  float64
}

// tokensRaw streams the raw comparison terms to fn without materializing
// a slice or lowercasing: word tokens are reported verbatim with a flag
// saying whether they carry upper case (word bytes are pure ASCII, so
// lowering is a byte map the caller can apply into scratch). Non-ASCII
// runes are lowered here — they are rare enough that the allocation does
// not matter — and reported with hasUpper=false.
func tokensRaw(text string, fn func(tok string, hasUpper bool)) {
	i := 0
	n := len(text)
	isWord := func(c byte) bool {
		return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '\''
	}
	for i < n {
		c := text[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case isWord(c):
			start := i
			hasUpper := false
			for i < n && isWord(text[i]) {
				if text[i] >= 'A' && text[i] <= 'Z' {
					hasUpper = true
				}
				i++
			}
			fn(text[start:i], hasUpper)
		case c < utf8.RuneSelf:
			fn(text[i:i+1], false)
			i++
		default:
			r, size := utf8.DecodeRuneInString(text[i:])
			if r == utf8.RuneError && size <= 1 {
				fn(text[i:i+1], false) // invalid byte, kept verbatim
				i++
				break
			}
			fn(strings.ToLower(text[i:i+size]), false)
			i += size
		}
	}
}

// tokens streams Tokenize's terms to fn without materializing the slice —
// the zero-allocation core the indexing path iterates (substrings share
// the input's backing array; ToLower only allocates when a token actually
// carries upper case). For pure-ASCII word tokens strings.ToLower is
// exactly the A–Z byte map, so this emits the same terms the query path
// resolves through its scratch-buffer lowering.
func tokens(text string, fn func(string)) {
	tokensRaw(text, func(t string, hasUpper bool) {
		if hasUpper {
			t = strings.ToLower(t)
		}
		fn(t)
	})
}

// Tokenize splits code into comparison terms: identifiers/keywords, numbers,
// and operator glyphs. Whitespace and formatting differences vanish, so
// reformatted copies still match. Non-ASCII runes (comments, exotic
// identifiers) are emitted whole, one term per rune — splitting them into
// bytes would make every multi-byte script share continuation-byte terms
// and spuriously correlate unrelated files. Invalid UTF-8 bytes stay
// single-byte terms.
func Tokenize(text string) []string {
	var out []string
	tokens(text, func(t string) { out = append(out, t) })
	return out
}

// termCounts builds the unigram+bigram term frequencies of text. order
// lists the distinct terms in first-appearance order, giving every
// consumer a deterministic iteration sequence.
func termCounts(text string) (counts map[string]float64, order []string) {
	toks := Tokenize(text)
	counts = make(map[string]float64, len(toks)*2)
	order = make([]string, 0, len(toks)*2)
	bump := func(t string) {
		if _, ok := counts[t]; !ok {
			order = append(order, t)
		}
		counts[t]++
	}
	for i, t := range toks {
		bump(t)
		if i+1 < len(toks) {
			bump(t + "\x00" + toks[i+1])
		}
	}
	return counts, order
}

func normOf(counts map[string]float64) float64 {
	var sum float64
	for _, f := range counts {
		sum += f * f //freehw:nolint mapord -- term counts are integer-valued; float64 sums of small ints are exact in any order
	}
	return math.Sqrt(sum)
}

// NewVector builds a unit-normalized TF vector over word unigrams and
// bigrams. Bigrams give the metric sensitivity to local structure so that
// different modules built from the same keyword vocabulary do not collide.
func NewVector(text string) Vector {
	counts, _ := termCounts(text)
	return Vector{terms: counts, norm: normOf(counts)}
}

// Cosine returns the cosine similarity in [0,1].
func Cosine(a, b Vector) float64 {
	if a.norm == 0 || b.norm == 0 {
		return 0
	}
	small, large := a.terms, b.terms
	if len(small) > len(large) {
		small, large = large, small
	}
	var dot float64
	for t, f := range small {
		if g, ok := large[t]; ok {
			dot += f * g //freehw:nolint mapord -- raw counts are integers, products and sums stay exact in any order
		}
	}
	return dot / (a.norm * b.norm)
}

// postingList holds one term's postings as parallel arrays — documents and
// tf(term, doc)/norm(doc) weights — so the accumulator walk streams 12
// packed bytes per posting instead of a padded 16-byte struct, and a dot
// product against raw query counts needs only the query norm at the end.
//
// Postings are always in strictly ascending doc order (documents index in
// insertion order), which makes every list a ready-made DAAT cursor. On
// top of that order the list carries block-max metadata: tmax is the
// largest weight anywhere in the list and bmax[b] the largest weight in
// block b of blockSize consecutive postings. Both are maintained
// incrementally by add — O(1) per posting, valid at every instant — so
// batch builds, incremental Add, and snapshot decode all share one code
// path and there is no seal-time rebuild for a concurrent reader to race.
// The metadata is derived state: serialization intentionally omits it
// (DecodeSnapshot reconstructs it), keeping the snapshot format unchanged.
type postingList struct {
	docs []int32
	ws   []float64
	bmax []float64 // per-block max weight, block b covers postings [b*blockSize, (b+1)*blockSize)
	tmax float64   // max weight in the whole list
}

func (pl *postingList) add(doc int32, w float64) {
	if len(pl.docs)&blockMask == 0 {
		pl.bmax = append(pl.bmax, w)
	} else if b := len(pl.bmax) - 1; w > pl.bmax[b] {
		pl.bmax[b] = w
	}
	if w > pl.tmax {
		pl.tmax = w
	}
	pl.docs = append(pl.docs, doc)
	pl.ws = append(pl.ws, w)
}

// rebuildBlockMeta recomputes bmax/tmax from the weights — the decode-time
// counterpart of add's incremental maintenance, producing identical
// metadata for identical weights.
func (pl *postingList) rebuildBlockMeta() {
	pl.bmax = pl.bmax[:0]
	pl.tmax = 0
	for j, w := range pl.ws {
		if j&blockMask == 0 {
			pl.bmax = append(pl.bmax, w)
		} else if b := len(pl.bmax) - 1; w > pl.bmax[b] {
			pl.bmax[b] = w
		}
		if w > pl.tmax {
			pl.tmax = w
		}
	}
}

// Corpus is an indexed collection of protected documents. Unigram terms
// are interned as int32 postings ids; bigrams are keyed by the pair of
// their unigram ids, so neither indexing nor querying ever materializes a
// concatenated bigram string — the dominant cost of the pre-PR-5 query
// path. A Corpus under construction is single-writer: Add must not race
// with reads. Seal it into a Snapshot for concurrent serving.
type Corpus struct {
	names    []string
	termIDs  map[string]int32 // unigram term -> postings id
	pairIDs  map[uint64]int32 // unigram id pair -> bigram postings id
	byteIDs  []int32          // single-byte term -> id (-1 absent); sealed only
	postings []postingList    // unigrams and bigrams share one id space
	sealed   bool
}

// buildByteIDs precomputes the dictionary ids of all 256 single-byte
// terms. Verilog text is punctuation-dense — `;`, `(`, `=`, `,` are a
// large share of every query's tokens — and a direct table turns each of
// those lookups into one array read instead of a string-map probe. Built
// only when the corpus seals (the dictionary is frozen from then on);
// an unsealed corpus keeps the plain map path.
func (c *Corpus) buildByteIDs() {
	t := make([]int32, 256)
	var buf [1]byte
	for i := range t {
		buf[0] = byte(i)
		if id, ok := c.termIDs[string(buf[:])]; ok {
			t[i] = id
		} else {
			t[i] = -1
		}
	}
	c.byteIDs = t
}

// NewCorpus builds a corpus; names and texts run in parallel. See
// NewCorpusWorkers.
func NewCorpus(names, texts []string) *Corpus {
	return NewCorpusWorkers(names, texts, 0)
}

// NewCorpusWorkers builds a corpus with bounded concurrency (workers <= 0
// means GOMAXPROCS). Per-document tokenization fans out; dictionary
// interning and index insertion stay sequential in document order, so the
// built index is identical regardless of worker count.
func NewCorpusWorkers(names, texts []string, workers int) *Corpus {
	c := &Corpus{termIDs: map[string]int32{}, pairIDs: map[uint64]int32{}}
	tokLists := par.Map(workers, len(texts), func(i int) []string {
		return Tokenize(texts[i])
	})
	for i, toks := range tokLists {
		name := ""
		if i < len(names) {
			name = names[i]
		}
		c.addToks(name, toks)
		tokLists[i] = nil // release each document's tokens as it lands
	}
	return c
}

// Add appends one document to the index.
func (c *Corpus) Add(name, text string) {
	c.addToks(name, Tokenize(text))
}

// uniID interns a unigram term, assigning the next postings id on first
// sight.
func (c *Corpus) uniID(t string) int32 {
	id, ok := c.termIDs[t]
	if !ok {
		id = int32(len(c.postings))
		c.termIDs[t] = id
		c.postings = append(c.postings, postingList{})
	}
	return id
}

// pairKey packs two unigram ids into the bigram dictionary key.
func pairKey(a, b int32) uint64 {
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// pairID interns a bigram by its unigram id pair.
func (c *Corpus) pairID(a, b int32) int32 {
	k := pairKey(a, b)
	id, ok := c.pairIDs[k]
	if !ok {
		id = int32(len(c.postings))
		c.pairIDs[k] = id
		c.postings = append(c.postings, postingList{})
	}
	return id
}

func (c *Corpus) addToks(name string, toks []string) {
	if c.sealed {
		panic("similarity: Add on a sealed Corpus")
	}
	doc := int32(len(c.names))
	c.names = append(c.names, name)
	if len(toks) == 0 {
		return // empty document: no postings, unreachable by any query
	}
	tids := make([]int32, len(toks))
	for i, t := range toks {
		tids[i] = c.uniID(t)
	}
	counts := make(map[int32]float64, 2*len(toks))
	order := make([]int32, 0, 2*len(toks))
	bump := func(id int32) {
		if _, ok := counts[id]; !ok {
			order = append(order, id)
		}
		counts[id]++
	}
	for i, id := range tids {
		bump(id)
		if i+1 < len(tids) {
			bump(c.pairID(id, tids[i+1]))
		}
	}
	// Counts are integers, so the norm is exact regardless of sum order.
	var sum float64
	for _, v := range counts {
		sum += v * v //freehw:nolint mapord -- integer counts, exact in any order (see comment above)
	}
	norm := math.Sqrt(sum)
	for _, id := range order {
		c.postings[id].add(doc, counts[id]/norm)
	}
}

// Len returns the number of indexed documents.
func (c *Corpus) Len() int { return len(c.names) }

// Match is the best corpus match for a query.
type Match struct {
	Name  string
	Index int
	Score float64
}

// unknownBase is the first effective id assigned to query tokens absent
// from the corpus dictionary (corpus ids are int32, so they stay below).
const unknownBase = uint64(1) << 31

// maxUnknownIDs caps how many distinct unknown query tokens receive their
// own effective id. Unigram effective ids must stay strictly below 2^32-1
// or a bigram occurrence key (prev+1)<<32|e would overflow into — or wrap
// past — the bigram key range and collide with unrelated terms. Tokens
// beyond the cap share one overflow id: for such degenerate queries
// (billions of distinct unknown tokens) the query norm merges their
// counts, which can only lower reported scores, never corrupt the key
// space. A variable, not a const, so tests can lower it.
var maxUnknownIDs = uint64(1) << 30

// A resolved query term packs a postings id (upper 32 bits) and its
// integer query count (lower 32 bits) into one uint64 — one word per term,
// no interface or closure per comparison.
func qtermID(qt uint64) int32  { return int32(qt >> 32) }
func qtermW(qt uint64) float64 { return float64(uint32(qt)) }

// packQterm clamps the count into the packed field's uint32 range instead
// of letting uint32(float64) truncate: a count beyond 2^32-1 (or below 0)
// would otherwise wrap to an arbitrary small weight — or, worse, leak into
// the id bits — for adversarially repetitive queries.
func packQterm(id int32, w float64) uint64 {
	if !(w > 0) {
		w = 0
	} else if w >= 1<<32 {
		w = 1<<32 - 1
	}
	return uint64(uint32(id))<<32 | uint64(uint32(w))
}

// qtab is a reusable open-addressed hash table counting query term keys
// (effective unigram ids and packed bigram occurrence keys). It replaces
// the PR 5 emit-sort-and-run-length scheme: counting ~2 tokens' worth of
// keys per token through a small linear-probe table is cheaper than
// sorting every occurrence, and only the distinct terms — typically a
// fraction of the occurrences — reach the final canonical sort. used
// records occupied slots in first-insertion order, so iteration is
// deterministic for a given query; nothing observable depends on table
// capacity.
type qtab struct {
	keys []uint64
	cnts []uint32
	used []int32
	low  []byte // scratch for lowercasing word tokens without allocating
}

func newQtab(capPow2 int) *qtab {
	return &qtab{keys: make([]uint64, capPow2), cnts: make([]uint32, capPow2), used: make([]int32, 0, capPow2/2)}
}

// bump increments key k's count, saturating at the packed-count ceiling
// instead of wrapping.
func (t *qtab) bump(k uint64) {
	if len(t.used)*2 >= len(t.keys) {
		t.grow()
	}
	mask := uint64(len(t.keys) - 1)
	slot := (k * 0x9e3779b97f4a7c15) >> 32 & mask
	for {
		if t.cnts[slot] == 0 {
			t.keys[slot] = k
			t.cnts[slot] = 1
			t.used = append(t.used, int32(slot))
			return
		}
		if t.keys[slot] == k {
			if t.cnts[slot] != ^uint32(0) {
				t.cnts[slot]++
			}
			return
		}
		slot = (slot + 1) & mask
	}
}

// grow doubles capacity, preserving insertion order in used.
func (t *qtab) grow() {
	oldKeys, oldCnts, oldUsed := t.keys, t.cnts, t.used
	t.keys = make([]uint64, 2*len(oldKeys))
	t.cnts = make([]uint32, len(t.keys))
	t.used = make([]int32, 0, len(t.keys)/2)
	mask := uint64(len(t.keys) - 1)
	for _, s := range oldUsed {
		k := oldKeys[s]
		slot := (k * 0x9e3779b97f4a7c15) >> 32 & mask
		for t.cnts[slot] != 0 {
			slot = (slot + 1) & mask
		}
		t.keys[slot] = k
		t.cnts[slot] = oldCnts[s]
		t.used = append(t.used, int32(slot))
	}
}

// reset clears counts for reuse without touching capacity.
func (t *qtab) reset() {
	for _, s := range t.used {
		t.cnts[s] = 0
	}
	t.used = t.used[:0]
}

var qtabPool = sync.Pool{New: func() any { return newQtab(1024) }}

// unknownPool recycles the query-local unknown-token intern maps: clear()
// keeps the buckets, so steady-state queries with out-of-dictionary
// identifiers (every fresh candidate) stop paying a map allocation each.
var unknownPool = sync.Pool{New: func() any { return make(map[string]uint64) }}

// resolveQuery streams a query's tokens and resolves them against the
// index in one pass: the returned terms are the query's corpus-known
// unigrams and bigrams with their counts, in the query's first-appearance
// order — the canonical accumulation order every scoring path shares,
// which is what keeps Best, TopK, and BestBatch byte-identical to each
// other. Crucially that order is a property of the QUERY alone, not of
// the dictionary it resolved against: a document's contributions sum in
// the same sequence whether its postings live in one big corpus or in a
// small segment, which is what keeps segmented scoring (see Snapshot)
// bit-identical to a single-segment full rebuild. qnorm is
// the norm over ALL query terms, corpus-known or not. A token the corpus
// has never seen cannot appear in any corpus bigram either, so its
// bigrams are skipped without a lookup. qts reuses buf's capacity when it
// fits, so a pooled caller pays no per-query slice allocation.
func (c *Corpus) resolveQuery(text string, buf []uint64) (qts []uint64, qnorm float64) {
	// Count one key per unigram and bigram occurrence. Unigram keys are
	// the effective id (< 2^32, dictionary id or interned unknown), bigram
	// keys pack the pair shifted into the upper half (>= 2^32) — the
	// unknown-id cap guarantees prev+1 < 2^32, so the two ranges cannot
	// collide.
	tab := qtabPool.Get().(*qtab)
	var unknown map[string]uint64
	defer func() {
		tab.reset()
		qtabPool.Put(tab)
		if unknown != nil {
			clear(unknown)
			unknownPool.Put(unknown)
		}
	}()
	// newUnknown interns a distinct out-of-dictionary token under a fresh
	// local id. Keys may alias the query text or copy scratch — the
	// deferred clear() drops every entry before the map returns to the
	// pool, so nothing outlives the call.
	newUnknown := func(key string) uint64 {
		lid := unknownBase + uint64(len(unknown))
		if lid >= unknownBase+maxUnknownIDs {
			lid = unknownBase + maxUnknownIDs // shared overflow id
		}
		unknown[key] = lid
		return lid
	}
	prev, seen := uint64(0), false
	tokensRaw(text, func(t string, hasUpper bool) {
		var e uint64
		if len(t) == 1 && c.byteIDs != nil {
			ch := t[0]
			if hasUpper {
				ch += 'a' - 'A' // a 1-byte token with upper IS a single A-Z letter
			}
			if id := c.byteIDs[ch]; id >= 0 {
				e = uint64(id)
				tab.bump(e)
				if seen {
					tab.bump((prev+1)<<32 | e)
				}
				prev, seen = e, true
				return
			}
			// Out-of-dictionary single byte: rare — fall through to the
			// generic unknown-token path below.
		}
		if hasUpper {
			// Lower into scratch: both map probes below compile to
			// allocation-free lookups; only a distinct unknown token pays a
			// string copy when it is interned.
			b := tab.low[:0]
			for i := 0; i < len(t); i++ {
				ch := t[i]
				if ch >= 'A' && ch <= 'Z' {
					ch += 'a' - 'A'
				}
				b = append(b, ch)
			}
			tab.low = b
			if id, ok := c.termIDs[string(b)]; ok {
				e = uint64(id)
			} else {
				if unknown == nil {
					unknown = unknownPool.Get().(map[string]uint64)
				}
				lid, have := unknown[string(b)]
				if !have {
					lid = newUnknown(string(b))
				}
				e = lid
			}
		} else if id, ok := c.termIDs[t]; ok {
			e = uint64(id)
		} else {
			if unknown == nil {
				unknown = unknownPool.Get().(map[string]uint64)
			}
			lid, have := unknown[t]
			if !have {
				lid = newUnknown(t)
			}
			e = lid
		}
		tab.bump(e)
		if seen {
			tab.bump((prev+1)<<32 | e)
		}
		prev, seen = e, true
	})
	if !seen {
		return nil, 0
	}
	var sum float64
	qts = buf[:0]
	if cap(qts) < len(tab.used) {
		qts = make([]uint64, 0, len(tab.used))
	}
	for _, slot := range tab.used {
		k, v := tab.keys[slot], float64(tab.cnts[slot])
		sum += v * v // integer counts: exact in any order
		switch {
		case k < unknownBase: // corpus-known unigram
			qts = append(qts, packQterm(int32(k), v))
		case k < 1<<32: // unknown unigram
		default: // bigram
			a, b := (k>>32)-1, k&0xffffffff
			if a < unknownBase && b < unknownBase {
				if id, ok := c.pairIDs[a<<32|b]; ok {
					qts = append(qts, packQterm(id, v))
				}
			}
		}
	}
	return qts, math.Sqrt(sum)
}

// score accumulates per-document dot products for the query's terms, in
// canonical query order. Only documents sharing at least one term
// with the query are touched; the returned accumulator holds
// dot(query, doc)/norm(doc), so dividing by the query norm yields cosine.
// qnorm is 0 for empty queries.
func (c *Corpus) score(text string) (acc []float64, qnorm float64) {
	qts, qnorm := c.resolveQuery(text, nil)
	if qnorm == 0 || len(c.names) == 0 {
		return nil, qnorm
	}
	acc = make([]float64, len(c.names))
	for _, qt := range qts {
		w := qtermW(qt)
		pl := &c.postings[qtermID(qt)]
		docs := pl.docs
		ws := pl.ws[:len(docs)] // one bound, checks eliminated below
		for k, doc := range docs {
			acc[doc] += w * ws[k]
		}
	}
	return acc, qnorm
}

// Best returns the closest corpus document to the query text, or
// Match{Name: "", Index: -1, Score: 0} when nothing scores above zero —
// the documented no-match value callers must check before using Index.
// Ties resolve to the lowest document index.
func (c *Corpus) Best(text string) Match {
	if ms := c.searchTopK(text, 1, searchAuto); len(ms) > 0 {
		return ms[0]
	}
	return Match{Index: -1}
}

// matchWorse orders matches weakest-first: lower score, then higher index
// (ties keep the lower document index).
func matchWorse(a, b Match) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Index > b.Index
}

// matchHeap is a bounded min-heap whose root is the weakest kept match.
type matchHeap []Match

func (h matchHeap) Len() int           { return len(h) }
func (h matchHeap) Less(i, j int) bool { return matchWorse(h[i], h[j]) }
func (h matchHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *matchHeap) Push(x any)        { *h = append(*h, x.(Match)) }
func (h *matchHeap) Pop() any {
	old := *h
	n := len(old)
	m := old[n-1]
	*h = old[:n-1]
	return m
}

// TopK returns the k closest matches, best first (score descending, index
// ascending on ties), using a bounded heap instead of sorting every score.
// Only documents that share at least one term with the query qualify: a
// zero cosine is "no match", so the result holds min(k, matching docs)
// entries rather than padding with arbitrary low-index corpus files.
func (c *Corpus) TopK(text string, k int) []Match {
	if k <= 0 {
		return nil
	}
	return c.searchTopK(text, k, searchAuto)
}
