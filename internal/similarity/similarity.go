// Package similarity implements the paper's copyright-infringement metric
// (§III-A): generated code is compared against a corpus of copyright-
// protected files using cosine similarity over term-frequency vectors; a
// score of 0.8 or higher marks the generation as originating from the
// protected corpus.
package similarity

import (
	"math"
	"sort"
	"strings"
)

// DefaultThreshold is the paper's violation threshold.
const DefaultThreshold = 0.8

// Vector is a sparse TF vector keyed by term hash, pre-normalized to unit
// length at construction.
type Vector struct {
	terms map[string]float64
	norm  float64
}

// Tokenize splits code into comparison terms: identifiers/keywords, numbers,
// and operator glyphs. Whitespace and formatting differences vanish, so
// reformatted copies still match.
func Tokenize(text string) []string {
	var out []string
	i := 0
	n := len(text)
	isWord := func(c byte) bool {
		return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '\''
	}
	for i < n {
		c := text[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case isWord(c):
			start := i
			for i < n && isWord(text[i]) {
				i++
			}
			out = append(out, strings.ToLower(text[start:i]))
		default:
			out = append(out, string(c))
			i++
		}
	}
	return out
}

// NewVector builds a unit-normalized TF vector over word unigrams and
// bigrams. Bigrams give the metric sensitivity to local structure so that
// different modules built from the same keyword vocabulary do not collide.
func NewVector(text string) Vector {
	toks := Tokenize(text)
	terms := make(map[string]float64, len(toks)*2)
	for i, t := range toks {
		terms[t]++
		if i+1 < len(toks) {
			terms[t+"\x00"+toks[i+1]]++
		}
	}
	var sum float64
	for _, f := range terms {
		sum += f * f
	}
	return Vector{terms: terms, norm: math.Sqrt(sum)}
}

// Cosine returns the cosine similarity in [0,1].
func Cosine(a, b Vector) float64 {
	if a.norm == 0 || b.norm == 0 {
		return 0
	}
	small, large := a.terms, b.terms
	if len(small) > len(large) {
		small, large = large, small
	}
	var dot float64
	for t, f := range small {
		if g, ok := large[t]; ok {
			dot += f * g
		}
	}
	return dot / (a.norm * b.norm)
}

// Corpus is an indexed collection of protected documents.
type Corpus struct {
	names   []string
	vectors []Vector
}

// NewCorpus builds a corpus; names and texts run in parallel.
func NewCorpus(names, texts []string) *Corpus {
	c := &Corpus{}
	for i, text := range texts {
		name := ""
		if i < len(names) {
			name = names[i]
		}
		c.names = append(c.names, name)
		c.vectors = append(c.vectors, NewVector(text))
	}
	return c
}

// Add appends one document.
func (c *Corpus) Add(name, text string) {
	c.names = append(c.names, name)
	c.vectors = append(c.vectors, NewVector(text))
}

// Len returns the number of indexed documents.
func (c *Corpus) Len() int { return len(c.vectors) }

// Match is the best corpus match for a query.
type Match struct {
	Name  string
	Index int
	Score float64
}

// Best returns the closest corpus document to the query text.
func (c *Corpus) Best(text string) Match {
	q := NewVector(text)
	best := Match{Index: -1}
	for i, v := range c.vectors {
		s := Cosine(q, v)
		if s > best.Score {
			best = Match{Name: c.names[i], Index: i, Score: s}
		}
	}
	return best
}

// TopK returns the k closest matches, best first.
func (c *Corpus) TopK(text string, k int) []Match {
	q := NewVector(text)
	ms := make([]Match, 0, len(c.vectors))
	for i, v := range c.vectors {
		ms = append(ms, Match{Name: c.names[i], Index: i, Score: Cosine(q, v)})
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].Score > ms[j].Score })
	if k < len(ms) {
		ms = ms[:k]
	}
	return ms
}
