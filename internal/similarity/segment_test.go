package similarity

import (
	"fmt"
	"math/rand"
	"testing"
)

// The segmented-index equivalence suite: every test pins the same
// invariant — a Snapshot composed of any segmentation, merge state, and
// tombstone pattern returns verdicts BIT-identical (scores compared with
// ==, not a tolerance) to a single-segment full rebuild of its live
// documents. This is the contract that lets the serving layer publish
// O(delta) without ever changing an audit verdict.

// buildSegmented splits docs into the given segment sizes via the
// streaming builder.
func buildSegmented(names, texts []string, sizes []int) []*Segment {
	var segs []*Segment
	off := 0
	for _, sz := range sizes {
		b := NewSegmentBuilder()
		for i := off; i < off+sz; i++ {
			b.Add(names[i], texts[i])
		}
		segs = append(segs, b.Seal())
		off += sz
	}
	if off != len(names) {
		panic("sizes do not cover docs")
	}
	return segs
}

// splitSizes produces a deterministic segmentation of n docs into parts
// parts (some possibly empty-adjacent; all >= 1 except when n < parts).
func splitSizes(n, parts int, rng *rand.Rand) []int {
	if parts > n {
		parts = n
	}
	sizes := make([]int, parts)
	for i := range sizes {
		sizes[i] = 1
	}
	for rem := n - parts; rem > 0; rem-- {
		sizes[rng.Intn(parts)]++
	}
	return sizes
}

func requireSameMatches(t *testing.T, ctx string, got, want []Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d matches, want %d\n got: %v\nwant: %v", ctx, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: match %d differs\n got: %+v\nwant: %+v", ctx, i, got[i], want[i])
		}
	}
}

// assertSnapshotEquiv checks Best, TopK (several k) and Name against a
// full single-segment rebuild of the same live docs.
func assertSnapshotEquiv(t *testing.T, ctx string, snap *Snapshot, liveNames, liveTexts, queries []string) {
	t.Helper()
	full := SealCorpus(liveNames, liveTexts, 1)
	if snap.Len() != full.Len() {
		t.Fatalf("%s: live count %d != %d", ctx, snap.Len(), full.Len())
	}
	for i := 0; i < full.Len(); i++ {
		if g, w := snap.Name(i), full.Name(i); g != w {
			t.Fatalf("%s: Name(%d) = %q, want %q", ctx, i, g, w)
		}
	}
	for qi, q := range queries {
		gb, wb := snap.Best(q), full.Best(q)
		if gb != wb {
			t.Fatalf("%s: query %d Best\n got: %+v\nwant: %+v", ctx, qi, gb, wb)
		}
		for _, k := range []int{1, 3, 7, full.Len() + 2} {
			requireSameMatches(t, fmt.Sprintf("%s: query %d TopK(%d)", ctx, qi, k),
				snap.TopK(q, k), full.TopK(q, k))
		}
	}
}

func segQueries(texts []string, rng *rand.Rand) []string {
	qs := []string{
		texts[rng.Intn(len(texts))],
		texts[rng.Intn(len(texts))] + "\nassign extra = tail ^ bits;",
		"module unrelated(input clk); endmodule",
		"",
	}
	// A splice of two docs: shared terms with many segments.
	a, b := texts[rng.Intn(len(texts))], texts[rng.Intn(len(texts))]
	qs = append(qs, a[:len(a)/2]+b[len(b)/2:])
	return qs
}

// Segmented snapshots with no tombstones match the full rebuild exactly,
// across segment counts.
func TestSegmentedMatchesFullRebuild(t *testing.T) {
	names, texts, _ := buildDiverse(91, 160)
	rng := rand.New(rand.NewSource(7))
	queries := segQueries(texts, rng)
	for _, parts := range []int{1, 2, 3, 5, 9, 32} {
		sizes := splitSizes(len(texts), parts, rng)
		snap := SnapshotOf(buildSegmented(names, texts, sizes), nil)
		assertSnapshotEquiv(t, fmt.Sprintf("parts=%d", parts), snap, names, texts, queries)
	}
}

// Tombstoned documents disappear from verdicts exactly as if the corpus
// had been rebuilt without them — across segmentations and removal rates.
func TestTombstonesMatchFilteredRebuild(t *testing.T) {
	names, texts, _ := buildDiverse(17, 120)
	rng := rand.New(rand.NewSource(23))
	queries := segQueries(texts, rng)
	for _, parts := range []int{1, 4, 11} {
		for _, removeFrac := range []float64{0.1, 0.5, 0.9} {
			ix := NewIndex()
			for _, g := range buildSegmented(names, texts, splitSizes(len(texts), parts, rng)) {
				ix.Append(g)
			}
			var removed []string
			liveSet := map[string]bool{}
			for _, n := range names {
				liveSet[n] = true
			}
			for _, n := range names {
				if rng.Float64() < removeFrac {
					removed = append(removed, n)
					liveSet[n] = false
				}
			}
			if got, want := ix.Remove(removed), len(removed); got != want {
				t.Fatalf("Remove returned %d, want %d", got, want)
			}
			var liveNames, liveTexts []string
			for i, n := range names {
				if liveSet[n] {
					liveNames = append(liveNames, n)
					liveTexts = append(liveTexts, texts[i])
				}
			}
			ctx := fmt.Sprintf("parts=%d frac=%.1f", parts, removeFrac)
			assertSnapshotEquiv(t, ctx, ix.Snapshot(), liveNames, liveTexts, queries)
		}
	}
}

// Merging any adjacent run — including runs with tombstones — leaves
// verdicts bit-identical, and the merged segment drops the dead docs.
func TestMergePreservesVerdicts(t *testing.T) {
	names, texts, _ := buildDiverse(5, 140)
	rng := rand.New(rand.NewSource(41))
	queries := segQueries(texts, rng)

	ix := NewIndex()
	for _, g := range buildSegmented(names, texts, splitSizes(len(texts), 6, rng)) {
		ix.Append(g)
	}
	var removed []string
	for _, n := range names {
		if rng.Float64() < 0.3 {
			removed = append(removed, n)
		}
	}
	ix.Remove(removed)
	before := ix.Snapshot()
	wantBest := make([]Match, len(queries))
	for i, q := range queries {
		wantBest[i] = before.Best(q)
	}

	// Merge pairwise until one segment remains, checking after each step.
	step := 0
	for ix.Segments() > 1 {
		i := rng.Intn(ix.Segments() - 1)
		segs, deads := ix.Run(i, i+1)
		merged := MergeSegments(segs, deads)
		if !ix.RunStable(i, i+1, segs, deads) {
			t.Fatal("run reported unstable with no concurrent writer")
		}
		ix.ReplaceRun(i, i+1, merged)
		snap := ix.Snapshot()
		if snap.Len() != before.Len() {
			t.Fatalf("step %d: live count changed %d -> %d", step, before.Len(), snap.Len())
		}
		for qi, q := range queries {
			if got := snap.Best(q); got != wantBest[qi] {
				t.Fatalf("step %d query %d: Best changed\n got: %+v\nwant: %+v", step, qi, got, wantBest[qi])
			}
		}
		step++
	}
	// Fully merged: one segment, no tombstones, and equivalent to the
	// filtered full rebuild.
	if ix.Segments() != 1 {
		t.Fatalf("expected 1 segment, got %d", ix.Segments())
	}
	if docs, live := ix.SegInfo(0); docs != live || live != before.Len() {
		t.Fatalf("merged segment docs=%d live=%d, want both %d", docs, live, before.Len())
	}
	liveSet := map[string]bool{}
	for _, n := range removed {
		liveSet[n] = true
	}
	var liveNames, liveTexts []string
	for i, n := range names {
		if !liveSet[n] {
			liveNames = append(liveNames, n)
			liveTexts = append(liveTexts, texts[i])
		}
	}
	assertSnapshotEquiv(t, "fully merged", ix.Snapshot(), liveNames, liveTexts, queries)
}

// A merge of an entirely tombstoned run returns nil, and ReplaceRun drops
// the run.
func TestMergeDropsDeadRun(t *testing.T) {
	names, texts, _ := buildDiverse(3, 30)
	ix := NewIndex()
	for _, g := range buildSegmented(names, texts, []int{10, 10, 10}) {
		ix.Append(g)
	}
	ix.Remove(names[10:20]) // kill the middle segment entirely
	segs, deads := ix.Run(1, 1)
	if merged := MergeSegments(segs, deads); merged != nil {
		t.Fatalf("merge of dead run returned a segment with %d docs", merged.Docs())
	}
	ix.ReplaceRun(1, 1, nil)
	if ix.Segments() != 2 || ix.Live() != 20 {
		t.Fatalf("after drop: segments=%d live=%d, want 2/20", ix.Segments(), ix.Live())
	}
	assertSnapshotEquiv(t, "dropped run", ix.Snapshot(),
		append(append([]string{}, names[:10]...), names[20:]...),
		append(append([]string{}, texts[:10]...), texts[20:]...),
		[]string{texts[0], texts[15], texts[25]})
}

// IndexFromSnapshot rebuilds a writer whose snapshot is equivalent, and
// removals through the rebuilt writer do not disturb the source snapshot
// (copy-on-write bitmaps).
func TestIndexFromSnapshotRoundTrip(t *testing.T) {
	names, texts, _ := buildDiverse(59, 80)
	rng := rand.New(rand.NewSource(11))
	ix := NewIndex()
	for _, g := range buildSegmented(names, texts, splitSizes(len(texts), 4, rng)) {
		ix.Append(g)
	}
	ix.Remove(names[5:25])
	snap := ix.Snapshot()

	ix2 := IndexFromSnapshot(snap)
	if ix2.Live() != snap.Len() || ix2.Segments() != snap.Segments() {
		t.Fatalf("rebuilt index live=%d segs=%d, want %d/%d",
			ix2.Live(), ix2.Segments(), snap.Len(), snap.Segments())
	}
	q := texts[30]
	want := snap.Best(q)
	if got := ix2.Snapshot().Best(q); got != want {
		t.Fatalf("rebuilt Best = %+v, want %+v", got, want)
	}
	// Mutate the rebuilt writer; the source snapshot must not move.
	ix2.Remove([]string{want.Name})
	if got := snap.Best(q); got != want {
		t.Fatalf("source snapshot changed after Remove on rebuilt index: %+v != %+v", got, want)
	}
	if got := ix2.Snapshot().Best(q); got.Name == want.Name {
		t.Fatalf("removed doc %q still best in rebuilt index", want.Name)
	}
}

// Segment round-trip: encode/decode a segment and splice it into a
// snapshot with tombstones; verdicts survive byte-for-byte.
func TestSegmentSerialRoundTripInSnapshot(t *testing.T) {
	names, texts, _ := buildDiverse(77, 60)
	segs := buildSegmented(names, texts, []int{20, 20, 20})
	dec := make([]*Segment, len(segs))
	for i, g := range segs {
		d, err := DecodeSegment(g.EncodeSections())
		if err != nil {
			t.Fatal(err)
		}
		dec[i] = d
	}
	dead := make([]uint64, 1)
	dead[0] = 0b1010 // tombstone docs 1 and 3 of the middle segment
	deads := [][]uint64{nil, dead, nil}
	orig := SnapshotOf(segs, deads)
	rt := SnapshotOf(dec, deads)
	for _, q := range []string{texts[3], texts[21], texts[59] + " etc"} {
		if g, w := rt.Best(q), orig.Best(q); g != w {
			t.Fatalf("Best after round-trip: %+v != %+v", g, w)
		}
		requireSameMatches(t, "TopK after round-trip", rt.TopK(q, 5), orig.TopK(q, 5))
	}
}

// Duplicate names: Append of a same-named doc keeps both live (replace
// semantics live in the serving layer); Remove tombstones every
// occurrence.
func TestRemoveAllOccurrences(t *testing.T) {
	ix := NewIndex()
	b := NewSegmentBuilder()
	b.Add("dup", "module a(input x); endmodule")
	b.Add("solo", "module b(output y); endmodule")
	ix.Append(b.Seal())
	b2 := NewSegmentBuilder()
	b2.Add("dup", "module c(inout z); endmodule")
	ix.Append(b2.Seal())
	if ix.Live() != 3 {
		t.Fatalf("live = %d, want 3", ix.Live())
	}
	if got := ix.Remove([]string{"dup", "missing"}); got != 2 {
		t.Fatalf("Remove = %d, want 2", got)
	}
	if ix.Live() != 1 {
		t.Fatalf("live = %d, want 1", ix.Live())
	}
	snap := ix.Snapshot()
	if snap.Len() != 1 || snap.Name(0) != "solo" {
		t.Fatalf("snapshot: len=%d name=%q", snap.Len(), snap.Name(0))
	}
	// Removing again is a no-op.
	if got := ix.Remove([]string{"dup"}); got != 0 {
		t.Fatalf("second Remove = %d, want 0", got)
	}
}
