package similarity

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

func TestCosineIdentical(t *testing.T) {
	v := NewVector("module m (input a, output y); assign y = ~a; endmodule")
	if got := Cosine(v, v); math.Abs(got-1) > 1e-12 {
		t.Fatalf("self cosine = %v", got)
	}
}

func TestCosineDisjoint(t *testing.T) {
	a := NewVector("alpha beta gamma")
	b := NewVector("delta epsilon zeta")
	if got := Cosine(a, b); got != 0 {
		t.Fatalf("disjoint cosine = %v", got)
	}
}

func TestCosineEmpty(t *testing.T) {
	e := NewVector("")
	a := NewVector("x")
	if got := Cosine(e, a); got != 0 {
		t.Fatalf("empty cosine = %v", got)
	}
}

func TestCosineFormattingInvariance(t *testing.T) {
	a := NewVector("assign y = a + b;")
	b := NewVector("assign   y=a+b ;")
	if got := Cosine(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("formatting should not matter: %v", got)
	}
}

func TestCosineDiscriminatesModules(t *testing.T) {
	counter := `module counter(input clk, rst, output reg [7:0] q);
  always @(posedge clk) if (rst) q <= 0; else q <= q + 1; endmodule`
	shifter := `module shifter(input clk, input d, output reg [7:0] q);
  always @(posedge clk) q <= {q[6:0], d}; endmodule`
	near := strings.Replace(counter, "counter", "counter2", 1)
	c := NewVector(counter)
	if s := Cosine(c, NewVector(near)); s < 0.9 {
		t.Fatalf("renamed copy similarity too low: %v", s)
	}
	if s := Cosine(c, NewVector(shifter)); s > 0.8 {
		t.Fatalf("different modules too similar: %v", s)
	}
}

func TestCorpusBest(t *testing.T) {
	corpus := NewCorpus(
		[]string{"a", "b", "c"},
		[]string{
			"module a(input x, output y); assign y = x; endmodule",
			"module b(input clk, output reg [3:0] q); always @(posedge clk) q <= q + 1; endmodule",
			"module c(input [7:0] d, output [7:0] q); assign q = ~d; endmodule",
		})
	m := corpus.Best("module b2(input clk, output reg [3:0] q); always @(posedge clk) q <= q + 1; endmodule")
	if m.Name != "b" {
		t.Fatalf("best = %+v", m)
	}
	if m.Score < 0.9 {
		t.Fatalf("score too low: %v", m.Score)
	}
}

func TestTopKOrdering(t *testing.T) {
	corpus := NewCorpus(nil, []string{"a b c d", "a b x y", "p q r s"})
	// "p q r s" shares no term with the query, so only two docs match.
	ms := corpus.TopK("a b c d", 3)
	if len(ms) != 2 {
		t.Fatalf("got %d matches", len(ms))
	}
	for i := 1; i < len(ms); i++ {
		if ms[i].Score > ms[i-1].Score {
			t.Fatalf("not sorted: %+v", ms)
		}
	}
	if ms[0].Index != 0 {
		t.Fatalf("wrong best: %+v", ms[0])
	}
}

func TestTokenizeNonASCIIRunes(t *testing.T) {
	toks := Tokenize("assign y = a; // 加法器")
	for _, tok := range toks {
		if !utf8.ValidString(tok) {
			t.Fatalf("tokenizer split a rune into bytes: %q in %q", tok, toks)
		}
	}
	found := false
	for _, tok := range toks {
		if tok == "加" {
			found = true
		}
	}
	if !found {
		t.Fatalf("multi-byte rune not emitted as a term: %q", toks)
	}
	// Two comments over disjoint rune sets must not correlate. The old
	// per-byte tokenizer shared UTF-8 continuation bytes between them and
	// reported a spuriously high cosine.
	a := NewVector("// 加法器模块选择")
	b := NewVector("// 乗算回路設計図")
	// Both start with "//", so strip the shared ASCII prefix influence by
	// checking the score stays far below the violation threshold.
	if got := Cosine(a, b); got >= 0.5 {
		t.Fatalf("disjoint non-ASCII comments correlate: cosine = %v", got)
	}
	// Invalid UTF-8 must not panic and must keep distinct bytes distinct.
	bad := Tokenize("\xff\xfe\xff")
	if len(bad) != 3 || bad[0] != "\xff" || bad[1] != "\xfe" {
		t.Fatalf("invalid UTF-8 tokens = %q", bad)
	}
}

func TestTopKNoZeroPadding(t *testing.T) {
	corpus := NewCorpus(
		[]string{"a", "b", "c", "d"},
		[]string{"alpha beta gamma", "alpha delta", "p q r s", "t u v w"})
	// Only two documents share any term with the query; k=4 must not pad
	// the result with score-0 entries for "c" and "d".
	ms := corpus.TopK("alpha beta", 4)
	if len(ms) != 2 {
		t.Fatalf("want 2 matches, got %+v", ms)
	}
	for _, m := range ms {
		if m.Score == 0 {
			t.Fatalf("zero-score entry reported as match: %+v", m)
		}
	}
	if ms[0].Name != "a" || ms[1].Name != "b" {
		t.Fatalf("wrong matches: %+v", ms)
	}
	// A query sharing nothing with the corpus matches nothing.
	if ms := corpus.TopK("zz yy xx", 3); len(ms) != 0 {
		t.Fatalf("disjoint query matched: %+v", ms)
	}
}

func TestBuildPrompts(t *testing.T) {
	// A protected file with a copyright header comment: the header must not
	// leak into the prompt.
	text := `// Copyright (c) MegaChip. All rights reserved. CONFIDENTIAL.
module secret_alu(input [31:0] a, b, input [2:0] op, output reg [31:0] y);
  always @* case (op)
    3'd0: y = a + b;
    3'd1: y = a - b;
    default: y = 0;
  endcase
endmodule`
	texts := make([]string, 5)
	names := make([]string, 5)
	for i := range texts {
		texts[i] = strings.Replace(text, "secret_alu", fmt.Sprintf("secret_alu_%d", i), 1)
		names[i] = fmt.Sprintf("f%d", i)
	}
	cfg := DefaultBenchmarkConfig()
	cfg.NumPrompts = 3
	prompts := BuildPrompts(names, texts, cfg)
	if len(prompts) != 3 {
		t.Fatalf("got %d prompts", len(prompts))
	}
	for _, p := range prompts {
		if strings.Contains(p.Text, "Copyright") || strings.Contains(p.Text, "CONFIDENTIAL") {
			t.Fatalf("copyright comment leaked into prompt: %q", p.Text)
		}
		if n := len(strings.Fields(p.Text)); n > cfg.MaxPromptWords {
			t.Fatalf("prompt too long: %d words", n)
		}
	}
}

// BuildPrompts promises round-robin cycling: a corpus smaller than
// NumPrompts must still yield exactly NumPrompts prompts (the paper's 100),
// repeating files in deterministic order, not silently fewer.
func TestBuildPromptsShortCorpusCycles(t *testing.T) {
	texts := []string{
		"module a(input x, output y); assign y = x & x | x; endmodule",
		"module b(input p, output q); assign q = p ^ p ^ p; endmodule",
	}
	names := []string{"a.v", "b.v"}
	cfg := DefaultBenchmarkConfig()
	cfg.NumPrompts = 5
	prompts := BuildPrompts(names, texts, cfg)
	if len(prompts) != 5 {
		t.Fatalf("want 5 prompts from 2 files, got %d", len(prompts))
	}
	order := []string{"a.v", "b.v", "a.v", "b.v", "a.v"}
	for i, p := range prompts {
		if p.SourceName != order[i] {
			t.Fatalf("prompt %d from %s, want %s", i, p.SourceName, order[i])
		}
	}
	// Cycled prompts are exact repeats of their first occurrence.
	if prompts[0].Text != prompts[2].Text || prompts[1].Text != prompts[3].Text {
		t.Fatal("cycled prompts differ from first pass")
	}
	// Degenerate inputs stay well-defined.
	if got := BuildPrompts(nil, nil, cfg); got != nil {
		t.Fatalf("no eligible files should yield nil, got %+v", got)
	}
	cfg.NumPrompts = 0
	if got := BuildPrompts(names, texts, cfg); got != nil {
		t.Fatalf("NumPrompts=0 should yield nil, got %+v", got)
	}
}

// echoGen returns a fixed continuation regardless of the prompt.
type echoGen struct{ text string }

func (g echoGen) Generate(prompt string, maxTokens int) string { return g.text }

func TestRunBenchmarkViolationDetection(t *testing.T) {
	protected := `module secret(input [7:0] k, output [7:0] y);
  wire [7:0] stage1 = k ^ 8'h5A;
  wire [7:0] stage2 = {stage1[3:0], stage1[7:4]};
  assign y = stage2 + 8'd17;
endmodule`
	corpus := NewCorpus([]string{"secret.v"}, []string{protected})
	cfg := DefaultBenchmarkConfig()
	cfg.NumPrompts = 1
	prompts := BuildPrompts([]string{"secret.v"}, []string{protected}, cfg)

	// A model that regurgitates the protected file violates.
	leak := RunBenchmark("leaky", echoGen{protected}, corpus, prompts, cfg)
	if leak.NumViolations != 1 {
		t.Fatalf("leaky model should violate: %+v", leak.Results[0].Best)
	}
	// A model producing unrelated code does not.
	clean := RunBenchmark("clean", echoGen{"always @(posedge clk) count <= count + 1; // nothing alike"}, corpus, prompts, cfg)
	if clean.NumViolations != 0 {
		t.Fatalf("clean model should not violate: score=%v", clean.Results[0].Best.Score)
	}
	if leak.ViolationRate() != 1 || clean.ViolationRate() != 0 {
		t.Fatal("violation rates wrong")
	}
}

// Property: cosine is symmetric and within [0, 1+eps].
func TestCosineProperties(t *testing.T) {
	fn := func(a, b string) bool {
		va, vb := NewVector(a), NewVector(b)
		s1, s2 := Cosine(va, vb), Cosine(vb, va)
		return math.Abs(s1-s2) < 1e-9 && s1 >= 0 && s1 <= 1+1e-9
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: self-similarity of non-empty text is 1.
func TestCosineSelfProperty(t *testing.T) {
	fn := func(words []string) bool {
		text := strings.Join(words, " ")
		v := NewVector(text)
		if strings.TrimSpace(text) == "" {
			return Cosine(v, v) == 0
		}
		return math.Abs(Cosine(v, v)-1) < 1e-9
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCorpusBest(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	texts := make([]string, 500)
	for i := range texts {
		var sb strings.Builder
		for j := 0; j < 150; j++ {
			fmt.Fprintf(&sb, "tok%d ", rng.Intn(400))
		}
		texts[i] = sb.String()
	}
	corpus := NewCorpus(nil, texts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		corpus.Best(texts[i%len(texts)])
	}
}
