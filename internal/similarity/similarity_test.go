package similarity

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCosineIdentical(t *testing.T) {
	v := NewVector("module m (input a, output y); assign y = ~a; endmodule")
	if got := Cosine(v, v); math.Abs(got-1) > 1e-12 {
		t.Fatalf("self cosine = %v", got)
	}
}

func TestCosineDisjoint(t *testing.T) {
	a := NewVector("alpha beta gamma")
	b := NewVector("delta epsilon zeta")
	if got := Cosine(a, b); got != 0 {
		t.Fatalf("disjoint cosine = %v", got)
	}
}

func TestCosineEmpty(t *testing.T) {
	e := NewVector("")
	a := NewVector("x")
	if got := Cosine(e, a); got != 0 {
		t.Fatalf("empty cosine = %v", got)
	}
}

func TestCosineFormattingInvariance(t *testing.T) {
	a := NewVector("assign y = a + b;")
	b := NewVector("assign   y=a+b ;")
	if got := Cosine(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("formatting should not matter: %v", got)
	}
}

func TestCosineDiscriminatesModules(t *testing.T) {
	counter := `module counter(input clk, rst, output reg [7:0] q);
  always @(posedge clk) if (rst) q <= 0; else q <= q + 1; endmodule`
	shifter := `module shifter(input clk, input d, output reg [7:0] q);
  always @(posedge clk) q <= {q[6:0], d}; endmodule`
	near := strings.Replace(counter, "counter", "counter2", 1)
	c := NewVector(counter)
	if s := Cosine(c, NewVector(near)); s < 0.9 {
		t.Fatalf("renamed copy similarity too low: %v", s)
	}
	if s := Cosine(c, NewVector(shifter)); s > 0.8 {
		t.Fatalf("different modules too similar: %v", s)
	}
}

func TestCorpusBest(t *testing.T) {
	corpus := NewCorpus(
		[]string{"a", "b", "c"},
		[]string{
			"module a(input x, output y); assign y = x; endmodule",
			"module b(input clk, output reg [3:0] q); always @(posedge clk) q <= q + 1; endmodule",
			"module c(input [7:0] d, output [7:0] q); assign q = ~d; endmodule",
		})
	m := corpus.Best("module b2(input clk, output reg [3:0] q); always @(posedge clk) q <= q + 1; endmodule")
	if m.Name != "b" {
		t.Fatalf("best = %+v", m)
	}
	if m.Score < 0.9 {
		t.Fatalf("score too low: %v", m.Score)
	}
}

func TestTopKOrdering(t *testing.T) {
	corpus := NewCorpus(nil, []string{"a b c d", "a b x y", "p q r s"})
	ms := corpus.TopK("a b c d", 3)
	if len(ms) != 3 {
		t.Fatalf("got %d matches", len(ms))
	}
	for i := 1; i < len(ms); i++ {
		if ms[i].Score > ms[i-1].Score {
			t.Fatalf("not sorted: %+v", ms)
		}
	}
	if ms[0].Index != 0 {
		t.Fatalf("wrong best: %+v", ms[0])
	}
}

func TestBuildPrompts(t *testing.T) {
	// A protected file with a copyright header comment: the header must not
	// leak into the prompt.
	text := `// Copyright (c) MegaChip. All rights reserved. CONFIDENTIAL.
module secret_alu(input [31:0] a, b, input [2:0] op, output reg [31:0] y);
  always @* case (op)
    3'd0: y = a + b;
    3'd1: y = a - b;
    default: y = 0;
  endcase
endmodule`
	texts := make([]string, 5)
	names := make([]string, 5)
	for i := range texts {
		texts[i] = strings.Replace(text, "secret_alu", fmt.Sprintf("secret_alu_%d", i), 1)
		names[i] = fmt.Sprintf("f%d", i)
	}
	cfg := DefaultBenchmarkConfig()
	cfg.NumPrompts = 3
	prompts := BuildPrompts(names, texts, cfg)
	if len(prompts) != 3 {
		t.Fatalf("got %d prompts", len(prompts))
	}
	for _, p := range prompts {
		if strings.Contains(p.Text, "Copyright") || strings.Contains(p.Text, "CONFIDENTIAL") {
			t.Fatalf("copyright comment leaked into prompt: %q", p.Text)
		}
		if n := len(strings.Fields(p.Text)); n > cfg.MaxPromptWords {
			t.Fatalf("prompt too long: %d words", n)
		}
	}
}

// echoGen returns a fixed continuation regardless of the prompt.
type echoGen struct{ text string }

func (g echoGen) Generate(prompt string, maxTokens int) string { return g.text }

func TestRunBenchmarkViolationDetection(t *testing.T) {
	protected := `module secret(input [7:0] k, output [7:0] y);
  wire [7:0] stage1 = k ^ 8'h5A;
  wire [7:0] stage2 = {stage1[3:0], stage1[7:4]};
  assign y = stage2 + 8'd17;
endmodule`
	corpus := NewCorpus([]string{"secret.v"}, []string{protected})
	cfg := DefaultBenchmarkConfig()
	cfg.NumPrompts = 1
	prompts := BuildPrompts([]string{"secret.v"}, []string{protected}, cfg)

	// A model that regurgitates the protected file violates.
	leak := RunBenchmark("leaky", echoGen{protected}, corpus, prompts, cfg)
	if leak.NumViolations != 1 {
		t.Fatalf("leaky model should violate: %+v", leak.Results[0].Best)
	}
	// A model producing unrelated code does not.
	clean := RunBenchmark("clean", echoGen{"always @(posedge clk) count <= count + 1; // nothing alike"}, corpus, prompts, cfg)
	if clean.NumViolations != 0 {
		t.Fatalf("clean model should not violate: score=%v", clean.Results[0].Best.Score)
	}
	if leak.ViolationRate() != 1 || clean.ViolationRate() != 0 {
		t.Fatal("violation rates wrong")
	}
}

// Property: cosine is symmetric and within [0, 1+eps].
func TestCosineProperties(t *testing.T) {
	fn := func(a, b string) bool {
		va, vb := NewVector(a), NewVector(b)
		s1, s2 := Cosine(va, vb), Cosine(vb, va)
		return math.Abs(s1-s2) < 1e-9 && s1 >= 0 && s1 <= 1+1e-9
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: self-similarity of non-empty text is 1.
func TestCosineSelfProperty(t *testing.T) {
	fn := func(words []string) bool {
		text := strings.Join(words, " ")
		v := NewVector(text)
		if strings.TrimSpace(text) == "" {
			return Cosine(v, v) == 0
		}
		return math.Abs(Cosine(v, v)-1) < 1e-9
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCorpusBest(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	texts := make([]string, 500)
	for i := range texts {
		var sb strings.Builder
		for j := 0; j < 150; j++ {
			fmt.Fprintf(&sb, "tok%d ", rng.Intn(400))
		}
		texts[i] = sb.String()
	}
	corpus := NewCorpus(nil, texts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		corpus.Best(texts[i%len(texts)])
	}
}
