package similarity

import (
	"sort"

	"freehw/internal/par"
	"freehw/internal/vlog"
)

// Generator is anything that can complete a code prompt — the interface the
// copyright benchmark drives. internal/lm's models implement it.
type Generator interface {
	// Generate returns a completion of prompt of at most maxTokens tokens.
	Generate(prompt string, maxTokens int) string
}

// BenchmarkConfig mirrors §III-A of the paper.
type BenchmarkConfig struct {
	// PromptFraction is the leading fraction of each file used as prompt
	// (paper: 0.20).
	PromptFraction float64
	// MaxPromptWords caps the prompt length (paper: 64).
	MaxPromptWords int
	// NumPrompts is the benchmark size (paper: 100).
	NumPrompts int
	// Threshold is the violation cosine threshold (paper: 0.8).
	Threshold float64
	// MaxTokens bounds each generation.
	MaxTokens int
	// Workers bounds benchmark concurrency (0 = GOMAXPROCS). Results are
	// identical for any worker count.
	Workers int
}

// DefaultBenchmarkConfig returns the paper's settings.
func DefaultBenchmarkConfig() BenchmarkConfig {
	return BenchmarkConfig{
		PromptFraction: 0.20,
		MaxPromptWords: 64,
		NumPrompts:     100,
		Threshold:      DefaultThreshold,
		MaxTokens:      512,
	}
}

// Prompt is one benchmark probe derived from a protected file.
type Prompt struct {
	SourceName string
	Text       string // comment-stripped leading fragment
}

// BuildPrompts constructs the benchmark prompt set from protected files:
// comments are stripped (they carry the copyright text itself), then the
// first PromptFraction of the file (≤ MaxPromptWords words) becomes the
// prompt. Files are taken in deterministic round-robin order until
// NumPrompts prompts exist.
func BuildPrompts(names, texts []string, cfg BenchmarkConfig) []Prompt {
	var eligible []Prompt
	for i := range texts {
		// Cycling only matters when the corpus is short; once NumPrompts
		// files qualify, later files can never appear in the output.
		if cfg.NumPrompts > 0 && len(eligible) >= cfg.NumPrompts {
			break
		}
		stripped := vlog.StripComments(texts[i])
		if len(vlog.Words(stripped)) < 8 {
			continue // too short to probe
		}
		name := ""
		if i < len(names) {
			name = names[i]
		}
		eligible = append(eligible, Prompt{
			SourceName: name,
			Text:       vlog.FirstFraction(stripped, cfg.PromptFraction, cfg.MaxPromptWords),
		})
	}
	if len(eligible) == 0 || cfg.NumPrompts <= 0 {
		return nil
	}
	prompts := make([]Prompt, 0, cfg.NumPrompts)
	for i := 0; len(prompts) < cfg.NumPrompts; i++ {
		prompts = append(prompts, eligible[i%len(eligible)])
	}
	return prompts
}

// ProbeResult is the outcome of one prompt.
type ProbeResult struct {
	Prompt     Prompt
	Generation string
	Best       Match
	Violation  bool
}

// Report summarizes a benchmark run (Figure 3's per-model datapoint).
type Report struct {
	Model         string
	NumPrompts    int
	NumViolations int
	Results       []ProbeResult
}

// ViolationRate is violations / prompts.
func (r Report) ViolationRate() float64 {
	if r.NumPrompts == 0 {
		return 0
	}
	return float64(r.NumViolations) / float64(r.NumPrompts)
}

// ScoreDistribution returns all best-match scores, sorted descending.
func (r Report) ScoreDistribution() []float64 {
	out := make([]float64, 0, len(r.Results))
	for _, p := range r.Results {
		out = append(out, p.Best.Score)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// RunBenchmark probes gen with every prompt and scores each generation
// against the protected corpus. Only the model's own output is scored (the
// prompt is by construction a fragment of a protected file; including it
// would flag every model).
//
// Prompts are independent, so generation + scoring fans out across
// cfg.Workers goroutines; results keep prompt order, making the Report
// byte-identical to a serial run. Generators must be safe for concurrent
// Generate calls (internal/lm models are: sampling is read-only).
func RunBenchmark(model string, gen Generator, corpus *Corpus, prompts []Prompt, cfg BenchmarkConfig) Report {
	rep := Report{Model: model, NumPrompts: len(prompts)}
	rep.Results = par.MapSlice(cfg.Workers, prompts, func(p Prompt) ProbeResult {
		g := gen.Generate(p.Text, cfg.MaxTokens)
		best := corpus.Best(g)
		return ProbeResult{
			Prompt:     p,
			Generation: g,
			Best:       best,
			Violation:  best.Score >= cfg.Threshold,
		}
	})
	for _, res := range rep.Results {
		if res.Violation {
			rep.NumViolations++
		}
	}
	return rep
}
