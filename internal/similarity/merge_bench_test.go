package similarity

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkSegmentMerge measures compacting an adjacent segment run (with
// ~25% of documents tombstoned) into one fresh segment — the background
// merger's unit of work. Total corpus size is held constant across the
// sub-benchmarks, so the segs axis isolates the per-segment overhead of
// dictionary recovery and re-interning.
func BenchmarkSegmentMerge(b *testing.B) {
	const total = 2000
	for _, nSegs := range []int{2, 8} {
		b.Run(fmt.Sprintf("segs=%d", nSegs), func(b *testing.B) {
			rng := rand.New(rand.NewSource(11))
			per := total / nSegs
			segs := make([]*Segment, nSegs)
			deads := make([][]uint64, nSegs)
			for s := range segs {
				names := make([]string, per)
				texts := make([]string, per)
				for i := range texts {
					names[i] = fmt.Sprintf("s%d_d%d.v", s, i)
					texts[i] = randomDoc(rng, s*per+i)
				}
				segs[s] = BuildSegment(names, texts, 0)
				dead := make([]uint64, (per+63)/64)
				for i := 0; i < per; i++ {
					if rng.Intn(4) == 0 {
						dead[i/64] |= 1 << (i % 64)
					}
				}
				deads[s] = dead
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if MergeSegments(segs, deads) == nil {
					b.Fatal("merge produced no live documents")
				}
			}
			b.StopTimer()
			if b.N > 0 {
				b.ReportMetric(float64(b.N*total)/b.Elapsed().Seconds(), "docs/s")
			}
		})
	}
}
