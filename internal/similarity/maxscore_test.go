package similarity

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// diverseVerilog emits a small synthetic module whose token mix varies per
// index — unlike randDoc's shared vocabulary, documents are mostly
// dissimilar, so threshold-based pruning has something to prune. This is
// the realistic audit shape: a generated file either plagiarizes one
// protected file (near-dup, scores ~1.0) or none (scores well below the
// 0.8 threshold).
func diverseVerilog(rng *rand.Rand, idx int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module mod_%d(input wire clk_%d, output reg [7:0] out_%d);\n", idx, idx%97, idx)
	for j := 0; j < 8+rng.Intn(12); j++ {
		fmt.Fprintf(&sb, "  wire [7:0] sig_%d_%d = reg_%d ^ 8'h%02X;\n", idx, j, rng.Intn(50), rng.Intn(256))
	}
	fmt.Fprintf(&sb, "  always @(posedge clk_%d) out_%d <= sig_%d_0;\nendmodule\n", idx%97, idx, idx)
	return sb.String()
}

// buildDiverse builds an n-document corpus of diverse modules, seeded
// deterministically.
func buildDiverse(seed int64, n int) ([]string, []string, *Corpus) {
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, n)
	texts := make([]string, n)
	for i := range texts {
		names[i] = fmt.Sprintf("d%d.v", i)
		texts[i] = diverseVerilog(rng, i)
	}
	return names, texts, NewCorpus(names, texts)
}

// matchesEqual demands bit-for-bit identity — same names, same indices,
// same float64 scores with zero tolerance. The pruned path's whole claim
// is that it computes the same sums in the same order.
func matchesEqual(t *testing.T, ctx string, got, want []Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d matches, want %d\n got: %+v\nwant: %+v", ctx, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: rank %d differs\n got: %+v\nwant: %+v", ctx, i, got[i], want[i])
		}
	}
}

// The pruned search must return results bit-identical to the exhaustive
// accumulator — every query shape, every k, corpora above and below the
// auto cutoff, shared-vocabulary (homogeneous, bailout-heavy) and diverse
// (skip-heavy) alike.
func TestPrunedBitExactEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	type corpusCase struct {
		name  string
		texts []string
		c     *Corpus
	}
	var cases []corpusCase

	// Homogeneous: randDoc's shared vocabulary makes every document score
	// against every query — the adversarial case where pruning must bail
	// out yet stay exact.
	for _, n := range []int{40, 130} {
		texts := make([]string, n)
		names := make([]string, n)
		for i := range texts {
			names[i] = fmt.Sprintf("d%d", i)
			texts[i] = randDoc(rng, 60, 40+rng.Intn(120))
		}
		texts[n/3] = texts[n/7] // force top ties
		cases = append(cases, corpusCase{fmt.Sprintf("homog%d", n), texts, NewCorpus(names, texts)})
	}
	// Diverse: pruning actually skips here.
	for _, n := range []int{96, 400} {
		_, texts, c := buildDiverse(int64(n), n)
		cases = append(cases, corpusCase{fmt.Sprintf("diverse%d", n), texts, c})
	}

	for _, cc := range cases {
		n := len(cc.texts)
		queries := []string{
			cc.texts[n/2],                          // exact duplicate: score 1.0
			cc.texts[n/3],                          // exact duplicate of a tie pair
			cc.texts[0] + " extra tail tokens xyz", // near-duplicate
			randDoc(rng, 60, 50),                   // shared-vocab probe
			diverseVerilog(rng, 999999),            // mostly-unknown probe
		}
		for qi, q := range queries {
			for _, k := range []int{1, 2, 10, n} {
				pruned := cc.c.searchTopK(q, k, searchPruned)
				exhaustive := cc.c.searchTopK(q, k, searchExhaustive)
				matchesEqual(t, fmt.Sprintf("%s q%d k%d", cc.name, qi, k), pruned, exhaustive)
			}
			// And the public surface agrees with both.
			best := cc.c.Best(q)
			if top := cc.c.searchTopK(q, 1, searchPruned); len(top) > 0 {
				if best != top[0] {
					t.Fatalf("%s q%d: Best %+v != pruned top1 %+v", cc.name, qi, best, top[0])
				}
			} else if best.Index != -1 {
				t.Fatalf("%s q%d: Best %+v but pruned found nothing", cc.name, qi, best)
			}
		}
	}
}

// Duplicated documents must keep resolving to the lowest index on both
// paths: the tie-safety argument for pruning (a pruned candidate always
// has a higher index than every kept match) gets exercised directly.
func TestPrunedTieDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	n := 200
	names := make([]string, n)
	texts := make([]string, n)
	base := make([]string, 10)
	for i := range base {
		base[i] = diverseVerilog(rng, i)
	}
	for i := range texts {
		names[i] = fmt.Sprintf("d%d", i)
		texts[i] = base[i%len(base)] // every doc duplicated 20x
	}
	c := NewCorpus(names, texts)
	for qi, q := range base {
		for _, k := range []int{1, 5, 40} {
			pruned := c.searchTopK(q, k, searchPruned)
			exhaustive := c.searchTopK(q, k, searchExhaustive)
			matchesEqual(t, fmt.Sprintf("q%d k%d", qi, k), pruned, exhaustive)
			if pruned[0].Index != qi {
				t.Fatalf("q%d: tie must resolve to lowest index %d, got %d", qi, qi, pruned[0].Index)
			}
		}
	}
}

// Corpus.Best's no-match contract: a query sharing no terms with the
// corpus returns Match{Name: "", Index: -1, Score: 0}, on every path and
// corpus size.
func TestBestNoMatchContract(t *testing.T) {
	want := Match{Name: "", Index: -1, Score: 0}
	_, _, big := buildDiverse(3, 300)
	small := NewCorpus([]string{"a.v"}, []string{"module a; endmodule"})
	for _, c := range []*Corpus{big, small} {
		for _, q := range []string{
			"zzz_unseen_alpha zzz_unseen_beta zzz_unseen_gamma",
			"", "   \n\t  ",
		} {
			if m := c.Best(q); m != want {
				t.Fatalf("Best(%q) on %d-doc corpus = %+v, want %+v", q, c.Len(), m, want)
			}
			if ms := c.TopK(q, 5); len(ms) != 0 {
				t.Fatalf("TopK(%q) = %+v, want empty", q, ms)
			}
		}
	}
}

// packQterm clamps: counts folded through uint32 must saturate, not wrap.
func TestPackQtermClamp(t *testing.T) {
	for _, tc := range []struct {
		w    float64
		want float64
	}{
		{0, 0}, {1, 1}, {3, 3},
		{float64(1<<32 - 1), 1<<32 - 1},
		{float64(uint64(1) << 32), 1<<32 - 1}, // exact boundary: would wrap to 0
		{1e18, 1<<32 - 1},                     // astronomically repetitive query
		{math.Inf(1), 1<<32 - 1},              // defensive: +Inf saturates
		{math.NaN(), 0},                       // defensive: NaN drops to 0
		{-3, 0},                               // defensive: negative drops to 0
	} {
		got := qtermW(packQterm(42, tc.w))
		if got != tc.want {
			t.Fatalf("packQterm weight %v -> %v, want %v", tc.w, got, tc.want)
		}
		if id := qtermID(packQterm(42, tc.w)); id != 42 {
			t.Fatalf("packQterm(42, %v) id = %d", tc.w, id)
		}
	}
}

// A massively repetitive query (one term repeated far beyond any sane
// document) must still score exactly: counts stay exact integers, qnorm
// stays finite, and the self-match is found.
func TestGiantRepetitiveQuery(t *testing.T) {
	names, texts, c := buildDiverse(9, 150)
	q := strings.Repeat("sig_3_0 ", 200000) + texts[3]
	m := c.Best(q)
	if m.Index != 3 || m.Name != names[3] {
		t.Fatalf("repetitive query best = %+v, want doc 3", m)
	}
	if !(m.Score > 0 && m.Score <= 1.0000000001) {
		t.Fatalf("repetitive query score out of range: %v", m.Score)
	}
	matchesEqual(t, "giant", c.searchTopK(q, 5, searchPruned), c.searchTopK(q, 5, searchExhaustive))
}

// The unknown-unigram id space is capped at maxUnknownIDs so bigram
// occurrence keys (prev+1)<<32 can never overflow into the unigram key
// range. With the cap forced tiny, overflow unknowns collapse onto one
// id — which only perturbs qnorm, a uniform scale across all documents —
// so the ranking must be unchanged and nothing may panic.
func TestUnknownIDCapOverflow(t *testing.T) {
	old := maxUnknownIDs
	maxUnknownIDs = 3
	defer func() { maxUnknownIDs = old }()

	names, texts, c := buildDiverse(11, 120)
	var sb strings.Builder
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&sb, "unseen_token_%d ", i) // 40 distinct unknowns >> cap of 3
		if i%5 == 0 {
			sb.WriteString(texts[7])
		}
	}
	q := sb.String()
	m := c.Best(q)
	if m.Index != 7 || m.Name != names[7] {
		t.Fatalf("capped-unknowns best = %+v, want doc 7", m)
	}
	matchesEqual(t, "capped", c.searchTopK(q, 4, searchPruned), c.searchTopK(q, 4, searchExhaustive))

	// All-unknown query under the cap: still a clean no-match.
	if got := c.Best("only unknown words here nothing indexed"); got.Index != -1 {
		t.Fatalf("all-unknown under cap = %+v", got)
	}
}

// BestBatch must be deterministic across worker counts — the pruned path
// keeps per-query evaluation independent of scheduling, so any fan-out
// yields byte-identical matches.
func TestBestBatchDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	_, texts, c := buildDiverse(21, 250)
	s := c.Seal()
	queries := make([]string, 64)
	for i := range queries {
		switch i % 4 {
		case 0:
			queries[i] = texts[rng.Intn(len(texts))]
		case 1:
			queries[i] = texts[rng.Intn(len(texts))] + " wire extra;"
		case 2:
			queries[i] = diverseVerilog(rng, 100000+i)
		default:
			queries[i] = queries[rng.Intn(i)] // force duplicates
		}
	}
	want := s.BestBatch(1, queries)
	for _, workers := range []int{2, 4, 13} {
		got := s.BestBatch(workers, queries)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d query %d: %+v != %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// On a realistic audit workload — diverse corpus, near-duplicate queries —
// pruning must skip the majority of postings. This is the acceptance
// criterion behind the large-corpus latency win.
func TestPruneStatsMajoritySkipped(t *testing.T) {
	_, texts, c := buildDiverse(31, 2000)
	EnablePruneStats(true)
	ResetPruneStats()
	defer EnablePruneStats(false)
	for i := 0; i < 50; i++ {
		q := texts[(i*37)%len(texts)] + "\n  wire tail;\n"
		if m := c.Best(q); m.Index < 0 {
			t.Fatalf("query %d found no match", i)
		}
	}
	st := ReadPruneStats()
	if st.Queries == 0 || st.PostingsTotal == 0 {
		t.Fatalf("stats not collected: %+v", st)
	}
	if st.PostingsVisited*2 >= st.PostingsTotal {
		t.Fatalf("pruning visited %d of %d postings (>= 50%%): %+v",
			st.PostingsVisited, st.PostingsTotal, st)
	}
	t.Logf("prune stats: visited %d / %d postings (%.1f%%), candidates=%d fullEvals=%d blockSkips=%d bailouts=%d",
		st.PostingsVisited, st.PostingsTotal,
		100*float64(st.PostingsVisited)/float64(st.PostingsTotal),
		st.Candidates, st.FullEvals, st.BlockSkips, st.Bailouts)
}

// Decoded snapshots rebuild block-max metadata identical to the builder's
// incremental maintenance.
func TestDecodeRebuildsBlockMeta(t *testing.T) {
	_, texts, c := buildDiverse(41, 300)
	s := c.Seal()
	seg, err := DecodeSegment(s.EncodeSections())
	if err != nil {
		t.Fatal(err)
	}
	dc := seg.c
	if len(dc.postings) != len(c.postings) {
		t.Fatalf("postings count %d != %d", len(dc.postings), len(c.postings))
	}
	for i := range c.postings {
		a, b := &c.postings[i], &dc.postings[i]
		if a.tmax != b.tmax {
			t.Fatalf("postings %d: tmax %v != %v", i, b.tmax, a.tmax)
		}
		if len(a.bmax) != len(b.bmax) {
			t.Fatalf("postings %d: bmax len %d != %d", i, len(b.bmax), len(a.bmax))
		}
		for j := range a.bmax {
			if a.bmax[j] != b.bmax[j] {
				t.Fatalf("postings %d block %d: %v != %v", i, j, b.bmax[j], a.bmax[j])
			}
		}
	}
	// And the decoded corpus answers pruned queries identically.
	for _, q := range []string{texts[12], texts[99] + " extra"} {
		matchesEqual(t, "decoded", dc.searchTopK(q, 5, searchPruned), c.searchTopK(q, 5, searchPruned))
	}
}

// Out-of-order postings are structural corruption now that DAAT cursors
// rely on ascending doc ids.
func TestDecodeRejectsUnsortedPostings(t *testing.T) {
	c := NewCorpus([]string{"a", "b"}, []string{"alpha beta", "alpha gamma"})
	secs := c.Seal().EncodeSections()
	// Section 3 layout: nPost u32, then per list: n u32, docs..., weights...
	// The "alpha" list has docs [0, 1] at offsets 8 and 12; swap them.
	post := append([]byte(nil), secs[3]...)
	post[8], post[12] = post[12], post[8]
	if _, err := DecodeSnapshot([][]byte{secs[0], secs[1], secs[2], post}); err == nil {
		t.Fatal("unsorted postings decoded without error")
	}
}

// BenchmarkCorpusBestPrunedNearDup is the skip-heavy case the tentpole
// targets: a diverse 2000-doc corpus audited with near-duplicate queries.
// Compare against BenchmarkCorpusBestExhaustiveNearDup for the pruning win.
func BenchmarkCorpusBestPrunedNearDup(b *testing.B) {
	benchNearDup(b, searchPruned)
}

func BenchmarkCorpusBestExhaustiveNearDup(b *testing.B) {
	benchNearDup(b, searchExhaustive)
}

func benchNearDup(b *testing.B, mode int) {
	_, texts, c := buildDiverse(61, 2000)
	queries := make([]string, 256)
	for i := range queries {
		queries[i] = texts[(i*31)%len(texts)] + "\n  wire tail;\n"
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ms := c.searchTopK(queries[i%len(queries)], 1, mode); len(ms) == 0 {
			b.Fatal("no match")
		}
	}
}
