package similarity

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// FuzzScoringEquivalence pins the pruned scorer to two references on
// arbitrary corpora and queries:
//
//  1. The exhaustive accumulator must agree bit for bit — same indices,
//     same float64 scores, zero tolerance. Pruning's claim is that it
//     computes the identical sums in the identical order, just skipping
//     documents it can prove lose.
//  2. The public map-based oracle (NewVector + Cosine) must agree within
//     float tolerance. The oracle shares no code with the postings index —
//     it recomputes tf vectors in hash-map order — so it catches indexing
//     bugs (dropped terms, wrong counts, bad norms) that both index paths
//     would share. Map iteration randomizes addition order, hence the
//     small epsilon.
//
// The corpus mixes diverse documents, forced duplicates (tie pressure),
// and a document derived from the query itself (near-dup pressure), and
// is built with a fuzzed worker count so parallel indexing stays
// deterministic too.
//
// A third phase pins the segmented index (PR 9): the same documents split
// into a fuzzed number of segments, with a fuzzed tombstone pattern and a
// fuzzed adjacent merge, must return Best/TopK BIT-identical (== on the
// float64 scores) to a single-segment full rebuild of the live documents.
func FuzzScoringEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(8), "module top(input clk); wire a = b ^ c; endmodule")
	f.Add(int64(42), uint8(3), "assign out = in1 & in2;")
	f.Add(int64(7), uint8(20), "zzz unknown tokens only qqq")
	f.Add(int64(99), uint8(1), "")
	f.Add(int64(5), uint8(12), "always @(posedge clk) q <= d;")

	f.Fuzz(func(t *testing.T, seed int64, nDocs uint8, query string) {
		n := int(nDocs)%24 + 2
		rng := rand.New(rand.NewSource(seed))
		names := make([]string, n)
		texts := make([]string, n)
		for i := range texts {
			names[i] = fmt.Sprintf("d%d.v", i)
			texts[i] = diverseVerilog(rng, int(seed&0xffff)+i)
		}
		// Tie pressure: duplicate one document.
		texts[n-1] = texts[rng.Intn(n)]
		// Near-dup pressure: one document borrows the query's text.
		if len(query) > 0 {
			texts[rng.Intn(n)] = query + "\nwire fuzz_tail = 1'b1;\n"
		}
		workers := 1 + int(seed&3)
		c := NewCorpusWorkers(names, texts, workers)

		for _, k := range []int{1, 3, n} {
			pruned := c.searchTopK(query, k, searchPruned)
			exhaustive := c.searchTopK(query, k, searchExhaustive)
			if len(pruned) != len(exhaustive) {
				t.Fatalf("k=%d: pruned %d matches, exhaustive %d", k, len(pruned), len(exhaustive))
			}
			for i := range pruned {
				if pruned[i] != exhaustive[i] {
					t.Fatalf("k=%d rank %d: pruned %+v != exhaustive %+v", k, i, pruned[i], exhaustive[i])
				}
			}
		}

		// Independent oracle: brute-force cosine over public vectors.
		const tol = 1e-9
		qv := NewVector(query)
		oracle := make([]float64, n)
		var oracleMax float64
		for i, txt := range texts {
			oracle[i] = Cosine(qv, NewVector(txt))
			if oracle[i] > oracleMax {
				oracleMax = oracle[i]
			}
		}
		best := c.Best(query)
		if best.Index < 0 {
			if oracleMax > tol {
				t.Fatalf("Best found nothing but oracle max is %v", oracleMax)
			}
			return
		}
		if d := math.Abs(best.Score - oracle[best.Index]); d > tol {
			t.Fatalf("Best doc %d: index score %v vs oracle %v (Δ%g)", best.Index, best.Score, oracle[best.Index], d)
		}
		if best.Score < oracleMax-tol {
			t.Fatalf("Best score %v but oracle says doc scoring %v exists", best.Score, oracleMax)
		}
		// Ties resolve to the lowest index: no earlier doc may score
		// meaningfully >= the winner.
		for i := 0; i < best.Index; i++ {
			if oracle[i] > best.Score+tol {
				t.Fatalf("doc %d scores %v > winner %d at %v", i, oracle[i], best.Index, best.Score)
			}
		}

		// Phase 3: segmented snapshot equivalence. Split, tombstone, merge —
		// then demand bit-identity against the filtered full rebuild.
		srng := rand.New(rand.NewSource(seed ^ 0x5e9))
		parts := 1 + srng.Intn(n)
		ix := NewIndex()
		off := 0
		for p := 0; p < parts; p++ {
			sz := (n - off) / (parts - p)
			if p == parts-1 {
				sz = n - off
			}
			b := NewSegmentBuilder()
			for i := off; i < off+sz; i++ {
				b.Add(names[i], texts[i])
			}
			if b.Len() > 0 {
				ix.Append(b.Seal())
			}
			off += sz
		}
		dead := make([]bool, n)
		var removeNames []string
		for i := range names {
			if srng.Intn(3) == 0 {
				removeNames = append(removeNames, names[i])
				dead[i] = true
			}
		}
		ix.Remove(removeNames)
		if ix.Segments() > 1 && srng.Intn(2) == 0 {
			lo := srng.Intn(ix.Segments() - 1)
			segs, deads := ix.Run(lo, lo+1)
			ix.ReplaceRun(lo, lo+1, MergeSegments(segs, deads))
		}
		var liveNames, liveTexts []string
		for i := range names {
			if !dead[i] {
				liveNames = append(liveNames, names[i])
				liveTexts = append(liveTexts, texts[i])
			}
		}
		snap := ix.Snapshot()
		full := SealCorpus(liveNames, liveTexts, workers)
		if snap.Len() != full.Len() {
			t.Fatalf("segmented live %d != rebuilt %d", snap.Len(), full.Len())
		}
		if sb, fb := snap.Best(query), full.Best(query); sb != fb {
			t.Fatalf("segmented Best %+v != rebuilt %+v (parts=%d)", sb, fb, parts)
		}
		for _, k := range []int{1, 3, n} {
			sk, fk := snap.TopK(query, k), full.TopK(query, k)
			if len(sk) != len(fk) {
				t.Fatalf("k=%d: segmented %d matches, rebuilt %d", k, len(sk), len(fk))
			}
			for i := range sk {
				if sk[i] != fk[i] {
					t.Fatalf("k=%d rank %d: segmented %+v != rebuilt %+v", k, i, sk[i], fk[i])
				}
			}
		}
	})
}
