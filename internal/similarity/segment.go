package similarity

// Segmented index layer (PR 9). A Segment is an immutable, sealed posting
// structure over a contiguous run of documents — exactly a sealed Corpus
// plus a storage identity. A Snapshot (snapshot.go) is an ordered list of
// segments with tombstone bitmaps; publishing a delta means building ONE
// new segment from the added documents (O(delta), not O(corpus)) and
// appending it, and removing documents means setting tombstone bits —
// the existing segments are never touched. Background merges (merge.go)
// compact adjacent segments without the source texts.
//
// Scoring stays bit-identical to a single-segment full rebuild because
// the canonical accumulation order is a property of the query alone (the
// query's first-appearance term order — see resolveQuery): a document's
// dot product sums the same float64s in the same sequence no matter which
// dictionary its postings live under.

// Segment is one immutable slice of the corpus. The zero id means "not
// yet assigned": internal/snapstore assigns a store-unique id the first
// time the segment is persisted, and the id never changes afterwards.
type Segment struct {
	c  *Corpus
	id uint64
}

// ID returns the segment's storage identity (0 = never persisted).
func (g *Segment) ID() uint64 { return g.id }

// SetID assigns the storage identity, once. Re-setting the same id is a
// no-op; changing an assigned id panics — segment files are immutable and
// content-addressed by id, so a changed id would alias two contents.
func (g *Segment) SetID(id uint64) {
	if id == 0 {
		panic("similarity: segment id 0 is reserved for unassigned")
	}
	if g.id != 0 && g.id != id {
		panic("similarity: segment id reassigned")
	}
	g.id = id
}

// Docs returns the number of documents in the segment (including any the
// enclosing snapshot has tombstoned — tombstones live above the segment).
func (g *Segment) Docs() int { return len(g.c.names) }

// SegmentBuilder accumulates documents into a new segment with O(document)
// work per Add: tokenize, intern against the segment-local dictionary,
// append postings. Peak memory is the segment's own index — the builder
// never retains document text — which is what lets the serving layer
// stream an NDJSON upload of any size straight into a bounded segment.
// Single-writer; Seal freezes it for concurrent readers.
type SegmentBuilder struct {
	c *Corpus
}

// NewSegmentBuilder returns an empty builder.
func NewSegmentBuilder() *SegmentBuilder {
	return &SegmentBuilder{c: &Corpus{termIDs: map[string]int32{}, pairIDs: map[uint64]int32{}}}
}

// Add appends one document. O(len(text)).
func (b *SegmentBuilder) Add(name, text string) { b.c.Add(name, text) }

// Len returns the number of documents added so far.
func (b *SegmentBuilder) Len() int { return b.c.Len() }

// Seal freezes the builder into an immutable segment. Any later Add
// panics.
func (b *SegmentBuilder) Seal() *Segment { return b.c.sealSegment() }

// sealSegment freezes a corpus and wraps it as a segment.
func (c *Corpus) sealSegment() *Segment {
	c.sealed = true
	if c.byteIDs == nil {
		c.buildByteIDs()
	}
	return &Segment{c: c}
}

// BuildSegment tokenizes texts with bounded concurrency and seals them
// into one segment — the batch counterpart of SegmentBuilder.Add, used by
// full (replace-mode) publishes. See NewCorpusWorkers.
func BuildSegment(names, texts []string, workers int) *Segment {
	return NewCorpusWorkers(names, texts, workers).sealSegment()
}
