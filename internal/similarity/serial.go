package similarity

import (
	"encoding/binary"
	"errors"
	"math"
	"sort"
)

// Segment serialization: the sealed index structure — names, the unigram
// and bigram dictionaries, and the postings lists with their precomputed
// unit-normalized weights — flattened into four independent byte sections.
// Serializing the index rather than the source texts is what makes restart
// instant (no re-tokenization, no dictionary rebuild) and byte-identical
// (float64 weights round-trip as raw bits, so a recovered segment scores
// every query exactly like the one that was saved).
//
// The sections are deliberately free of file framing: internal/snapstore
// owns the on-disk format (magic, format version, per-section lengths and
// checksums, crash-safe rename), and this file owns only the structural
// encoding. Encoding is deterministic — dictionaries are written in
// postings-id order, not map order — so equal segments produce equal
// bytes and tests can compare encodings directly.
//
// The same four sections served as the whole-snapshot encoding before the
// index went segmented; a pre-segmentation snapshot file is therefore
// exactly one segment's sections, which is how internal/snapstore loads
// old files byte-identically.

// SnapshotSections is the number of sections Segment.EncodeSections
// produces and DecodeSegment consumes: names, unigram dictionary, bigram
// dictionary, postings.
const SnapshotSections = 4

// ErrCorruptSnapshot reports a structurally invalid section payload —
// truncated data, out-of-range ids, or trailing garbage.
var ErrCorruptSnapshot = errors.New("similarity: corrupt snapshot encoding")

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// reader is a bounds-checked little-endian cursor; every read reports
// truncation instead of panicking, so corrupted files fail cleanly.
type reader struct {
	b   []byte
	off int
	err bool
}

func (r *reader) u32() uint32 {
	if r.off+4 > len(r.b) {
		r.err = true
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.off+8 > len(r.b) {
		r.err = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) bytes(n int) []byte {
	if n < 0 || r.off+n > len(r.b) {
		r.err = true
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

func (r *reader) done() bool { return !r.err && r.off == len(r.b) }

// EncodeSections serializes the segment into its four structural
// sections. The result aliases nothing in the segment; it is safe to
// write while concurrent queries run, because a sealed segment is
// immutable.
func (g *Segment) EncodeSections() [][]byte {
	c := g.c

	// Section 0: document names.
	names := appendU32(nil, uint32(len(c.names)))
	for _, n := range c.names {
		names = appendU32(names, uint32(len(n)))
		names = append(names, n...)
	}

	// Section 1: unigram dictionary, in postings-id order for determinism.
	type termEntry struct {
		term string
		id   int32
	}
	terms := make([]termEntry, 0, len(c.termIDs))
	for t, id := range c.termIDs {
		terms = append(terms, termEntry{t, id})
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i].id < terms[j].id })
	uni := appendU32(nil, uint32(len(terms)))
	for _, e := range terms {
		uni = appendU32(uni, uint32(e.id))
		uni = appendU32(uni, uint32(len(e.term)))
		uni = append(uni, e.term...)
	}

	// Section 2: bigram dictionary (unigram-id pair -> postings id), in
	// postings-id order.
	type pairEntry struct {
		key uint64
		id  int32
	}
	pairs := make([]pairEntry, 0, len(c.pairIDs))
	for k, id := range c.pairIDs {
		pairs = append(pairs, pairEntry{k, id})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].id < pairs[j].id })
	bi := appendU32(nil, uint32(len(pairs)))
	for _, e := range pairs {
		bi = appendU64(bi, e.key)
		bi = appendU32(bi, uint32(e.id))
	}

	// Section 3: postings lists — parallel doc/weight arrays, weights as
	// raw IEEE-754 bits so scoring after a reload is bit-identical.
	post := appendU32(nil, uint32(len(c.postings)))
	for i := range c.postings {
		pl := &c.postings[i]
		post = appendU32(post, uint32(len(pl.docs)))
		for _, d := range pl.docs {
			post = appendU32(post, uint32(d))
		}
		for _, w := range pl.ws {
			post = appendU64(post, math.Float64bits(w))
		}
	}

	return [][]byte{names, uni, bi, post}
}

// EncodeSections on a single-segment, tombstone-free snapshot returns the
// segment's sections — the legacy whole-snapshot encoding. Multi-segment
// or tombstoned snapshots have no single-blob encoding (internal/snapstore
// persists them as a descriptor over per-segment files), so this panics
// for them; it exists for tests and tools that round-trip one segment.
func (s *Snapshot) EncodeSections() [][]byte {
	if len(s.segs) != 1 || s.segs[0].dead != nil {
		panic("similarity: EncodeSections requires a single tombstone-free segment")
	}
	return s.segs[0].seg.EncodeSections()
}

// DecodeSnapshot reconstructs a single-segment snapshot from
// EncodeSections output — the shape every pre-segmentation snapshot file
// decodes to.
func DecodeSnapshot(sections [][]byte) (*Snapshot, error) {
	seg, err := DecodeSegment(sections)
	if err != nil {
		return nil, err
	}
	return newSnapshot([]*Segment{seg}, nil), nil
}

// DecodeSegment reconstructs a sealed segment from EncodeSections
// output. Every structural invariant is re-validated — section count,
// lengths, id ranges, postings/dictionary agreement — so a section that
// passed its checksum but was encoded by a buggy or hostile writer still
// fails with ErrCorruptSnapshot instead of producing an index that
// panics at query time.
func DecodeSegment(sections [][]byte) (*Segment, error) {
	if len(sections) != SnapshotSections {
		return nil, ErrCorruptSnapshot
	}
	c := &Corpus{termIDs: map[string]int32{}, pairIDs: map[uint64]int32{}, sealed: true}

	// Names.
	r := &reader{b: sections[0]}
	nNames := int(r.u32())
	if r.err || nNames < 0 || nNames > len(sections[0]) {
		return nil, ErrCorruptSnapshot
	}
	c.names = make([]string, 0, nNames)
	for i := 0; i < nNames; i++ {
		c.names = append(c.names, string(r.bytes(int(r.u32()))))
	}
	if !r.done() {
		return nil, ErrCorruptSnapshot
	}

	// Postings first: the dictionaries validate their ids against its size.
	r = &reader{b: sections[3]}
	nPost := int(r.u32())
	if r.err || nPost < 0 || nPost > len(sections[3]) {
		return nil, ErrCorruptSnapshot
	}
	c.postings = make([]postingList, nPost)
	for i := 0; i < nPost; i++ {
		n := int(r.u32())
		if r.err || n < 0 || n > len(sections[3]) {
			return nil, ErrCorruptSnapshot
		}
		pl := &c.postings[i]
		pl.docs = make([]int32, n)
		pl.ws = make([]float64, n)
		for j := 0; j < n; j++ {
			d := int32(r.u32())
			if int(d) < 0 || int(d) >= len(c.names) {
				return nil, ErrCorruptSnapshot
			}
			// Doc-ordered lists are what the DAAT cursors and the pruned
			// search's tie rule rely on; the builder always writes them
			// ascending, so anything else is corruption.
			if j > 0 && d <= pl.docs[j-1] {
				return nil, ErrCorruptSnapshot
			}
			pl.docs[j] = d
		}
		for j := 0; j < n; j++ {
			pl.ws[j] = math.Float64frombits(r.u64())
		}
		// Block-max metadata is derived state and deliberately not
		// serialized (the format — and every old snapshot file — stays
		// valid); rebuild it deterministically from the weights.
		pl.rebuildBlockMeta()
	}
	if !r.done() {
		return nil, ErrCorruptSnapshot
	}

	// Unigram dictionary.
	r = &reader{b: sections[1]}
	nTerms := int(r.u32())
	if r.err || nTerms < 0 || nTerms > len(sections[1]) {
		return nil, ErrCorruptSnapshot
	}
	for i := 0; i < nTerms; i++ {
		id := int32(r.u32())
		term := string(r.bytes(int(r.u32())))
		if r.err || int(id) < 0 || int(id) >= nPost {
			return nil, ErrCorruptSnapshot
		}
		if _, dup := c.termIDs[term]; dup {
			return nil, ErrCorruptSnapshot
		}
		c.termIDs[term] = id
	}
	if !r.done() {
		return nil, ErrCorruptSnapshot
	}

	// Bigram dictionary.
	r = &reader{b: sections[2]}
	nPairs := int(r.u32())
	if r.err || nPairs < 0 || nPairs > len(sections[2]) {
		return nil, ErrCorruptSnapshot
	}
	for i := 0; i < nPairs; i++ {
		key := r.u64()
		id := int32(r.u32())
		if r.err || int(id) < 0 || int(id) >= nPost {
			return nil, ErrCorruptSnapshot
		}
		if _, dup := c.pairIDs[key]; dup {
			return nil, ErrCorruptSnapshot
		}
		c.pairIDs[key] = id
	}
	if !r.done() {
		return nil, ErrCorruptSnapshot
	}

	c.buildByteIDs()
	return &Segment{c: c}, nil
}
