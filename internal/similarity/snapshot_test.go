package similarity

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestSealedCorpusRejectsAdd(t *testing.T) {
	c := NewCorpus([]string{"a"}, []string{"alpha beta"})
	snap := c.Seal()
	defer func() {
		if recover() == nil {
			t.Fatal("Add on a sealed corpus should panic")
		}
	}()
	_ = snap
	c.Add("b", "gamma delta")
}

// Snapshot reads must return exactly what the underlying corpus returns.
func TestSnapshotMatchesCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 30
	names := make([]string, n)
	texts := make([]string, n)
	for i := range texts {
		names[i] = fmt.Sprintf("d%d", i)
		texts[i] = randDoc(rng, 40, 30+rng.Intn(80))
	}
	c := NewCorpus(names, texts)
	// Score queries before sealing: sealing must not change any verdict.
	queries := make([]string, 10)
	wantBest := make([]Match, len(queries))
	wantTopK := make([][]Match, len(queries))
	for q := range queries {
		queries[q] = randDoc(rng, 60, 10+rng.Intn(50))
		wantBest[q] = c.Best(queries[q])
		wantTopK[q] = c.TopK(queries[q], 5)
	}
	snap := c.Seal()
	if snap.Len() != n || snap.Name(3) != "d3" {
		t.Fatalf("snapshot shape: len=%d name3=%q", snap.Len(), snap.Name(3))
	}
	for q, query := range queries {
		if got := snap.Best(query); got != wantBest[q] {
			t.Fatalf("query %d: snapshot best %+v != corpus best %+v", q, got, wantBest[q])
		}
		got := snap.TopK(query, 5)
		if len(got) != len(wantTopK[q]) {
			t.Fatalf("query %d: topk len %d != %d", q, len(got), len(wantTopK[q]))
		}
		for i := range got {
			if got[i] != wantTopK[q][i] {
				t.Fatalf("query %d rank %d: %+v != %+v", q, i, got[i], wantTopK[q][i])
			}
		}
	}
}

// BestBatch must be byte-identical to per-query Best, including duplicate
// and empty texts, at any worker count.
func TestBestBatchMatchesBest(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 25
	texts := make([]string, n)
	names := make([]string, n)
	for i := range texts {
		names[i] = fmt.Sprintf("d%d", i)
		texts[i] = randDoc(rng, 30, 20+rng.Intn(60))
	}
	snap := SealCorpus(names, texts, 0)
	queries := []string{}
	for q := 0; q < 20; q++ {
		queries = append(queries, randDoc(rng, 50, 5+rng.Intn(40)))
	}
	queries = append(queries, "", queries[0], queries[3], queries[3])
	want := make([]Match, len(queries))
	for i, q := range queries {
		want[i] = snap.Best(q)
	}
	for _, workers := range []int{1, 2, 7, 0} {
		got := snap.BestBatch(workers, queries)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: len %d != %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d query %d: %+v != %+v", workers, i, got[i], want[i])
			}
		}
	}
	if snap.BestBatch(0, nil) != nil {
		t.Fatal("empty batch should be nil")
	}
}

// A snapshot must serve concurrent readers without races (run with -race).
func TestSnapshotConcurrentReads(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	texts := make([]string, 20)
	for i := range texts {
		texts[i] = randDoc(rng, 30, 40)
	}
	snap := SealCorpus(nil, texts, 0)
	want := snap.Best(texts[4])
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if got := snap.Best(texts[4]); got != want {
					panic(fmt.Sprintf("concurrent read diverged: %+v != %+v", got, want))
				}
				snap.TopK(texts[(i*7)%len(texts)], 3)
				snap.BestBatch(2, texts[:5])
			}
		}()
	}
	wg.Wait()
}
