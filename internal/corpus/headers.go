package corpus

import (
	"fmt"
	"math/rand"

	"freehw/internal/license"
)

// fictional copyright holders for protected files (the paper found Intel and
// Xilinx headers; this simulation uses invented companies).
var companies = []string{
	"MegaChip Systems", "Quartz Semiconductor", "VectorLogic Inc",
	"SiliconForge Ltd", "NovaCore Technologies", "Axiom Microsystems",
	"HelioDyne Corporation", "Cobalt Logic LLC",
}

var authors = []string{
	"jdoe", "asmith", "hdl_hacker", "fpga4fun", "verilog_dave", "chipwright",
	"rtl_rosa", "synthia", "bitbanger", "meg_uart",
}

// licenseHeader renders the header comment for an open-source file.
func licenseHeader(rng *rand.Rand, l license.License) string {
	author := pick(rng, authors...)
	year := 2008 + rng.Intn(17)
	switch l {
	case license.MIT:
		return fmt.Sprintf(`// Copyright (c) %d %s
// Permission is hereby granted, free of charge, to any person obtaining a
// copy of this software, to deal in the Software without restriction.
// SPDX-License-Identifier: MIT
`, year, author)
	case license.Apache20:
		return fmt.Sprintf(`// Copyright %d %s
// Licensed under the Apache License, Version 2.0 (the "License");
// you may not use this file except in compliance with the License.
`, year, author)
	case license.GPL20:
		return fmt.Sprintf(`// Copyright (C) %d %s
// This program is free software; you can redistribute it and/or modify it
// under the terms of the GNU General Public License as published by the
// Free Software Foundation; either version 2 of the License.
`, year, author)
	case license.GPL30:
		return fmt.Sprintf(`// Copyright (C) %d %s
// This program is free software: you can redistribute it and/or modify it
// under the terms of the GNU General Public License as published by the
// Free Software Foundation, either version 3 of the License.
`, year, author)
	case license.LGPL:
		return fmt.Sprintf(`// Copyright (C) %d %s
// This library is free software; see the GNU Lesser General Public License.
`, year, author)
	case license.MPL20:
		return fmt.Sprintf(`// Copyright %d %s
// This Source Code Form is subject to the terms of the Mozilla Public
// License, v. 2.0.
`, year, author)
	case license.CC:
		return fmt.Sprintf(`// (c) %d %s
// This work is licensed under a Creative Commons Attribution 4.0 License.
`, year, author)
	case license.EPL:
		return fmt.Sprintf(`// Copyright (c) %d %s
// This program is made available under the Eclipse Public License 2.0.
`, year, author)
	case license.BSD2Clause, license.BSD3Clause:
		return fmt.Sprintf(`// Copyright (c) %d %s
// Redistribution and use in source and binary forms, with or without
// modification, are permitted provided that the conditions are met.
`, year, author)
	default:
		if rng.Intn(2) == 0 {
			return "" // many unlicensed files have no header at all
		}
		return fmt.Sprintf("// %s's hardware experiments, %d.\n", pick(rng, authors...), year)
	}
}

// proprietaryHeader renders the header of a copyright-protected file.
func proprietaryHeader(rng *rand.Rand, company string) string {
	year := 2008 + rng.Intn(17)
	switch rng.Intn(4) {
	case 0:
		return fmt.Sprintf(`// Copyright (c) %d %s. All rights reserved.
// This file is PROPRIETARY AND CONFIDENTIAL. Unauthorized copying of this
// file, via any medium, is strictly prohibited.
`, year, company)
	case 1:
		return fmt.Sprintf(`/*
 * Copyright %d-%d %s
 * All rights reserved. This design is a trade secret of %s.
 * Internal use only. Do not distribute.
 */
`, year, year+3, company, company)
	case 2:
		return fmt.Sprintf(`// (c) %d %s - CONFIDENTIAL
// Licensed material of %s. NDA required.
`, year, company, company)
	default:
		return fmt.Sprintf(`// %s proprietary IP core. Copyright %d.
// Unauthorized use is prohibited. All rights reserved.
`, company, year)
	}
}

// licenseText returns a LICENSE file body recognizable by license.Classify.
func licenseText(l license.License) string {
	switch l {
	case license.MIT:
		return "MIT License\n\nPermission is hereby granted, free of charge, to any person obtaining a copy of this software and associated documentation files."
	case license.Apache20:
		return "Apache License, Version 2.0\n\nLicensed under the Apache License, Version 2.0."
	case license.GPL20:
		return "GNU GENERAL PUBLIC LICENSE Version 2\n\nyou can redistribute it under the terms of the GNU General Public License as published by the Free Software Foundation; either version 2."
	case license.GPL30:
		return "GNU GENERAL PUBLIC LICENSE Version 3\n\nyou can redistribute it under the terms of the GNU General Public License as published by the Free Software Foundation, either version 3."
	case license.LGPL:
		return "GNU LESSER GENERAL PUBLIC LICENSE\n\nThis library is free software."
	case license.MPL20:
		return "Mozilla Public License Version 2.0\n\nThis Source Code Form is subject to the terms of the Mozilla Public License, v. 2.0."
	case license.CC:
		return "Creative Commons Attribution 4.0 International\n\nThis work is licensed under CC BY 4.0."
	case license.EPL:
		return "Eclipse Public License - v 2.0\n\nTHE ACCOMPANYING PROGRAM IS PROVIDED UNDER THE TERMS OF THIS ECLIPSE PUBLIC LICENSE."
	case license.BSD2Clause:
		return "BSD 2-Clause License\n\nRedistribution and use in source and binary forms, with or without modification, are permitted."
	case license.BSD3Clause:
		return "BSD 3-Clause License\n\nRedistribution and use in source and binary forms, with or without modification, are permitted provided that the following conditions are met: 1. Redistributions of source code..."
	}
	return "All rights reserved by the author. Ask before use."
}

// junkFile fabricates a non-Verilog repository file (README, scripts,
// binary test data, constraints) that the scraper must filter out.
func junkFile(rng *rand.Rand) (name, content string) {
	switch rng.Intn(6) {
	case 0:
		return "README.md", "# " + pick(rng, "My FPGA project", "RTL experiments", "SoC bits") +
			"\n\nBuild with make. Simulation via testbench.\n"
	case 1:
		return "Makefile", "all:\n\tiverilog -o sim *.v\n\nclean:\n\trm -f sim\n"
	case 2:
		return "constraints.xdc", "set_property PACKAGE_PIN W5 [get_ports clk]\ncreate_clock -period 10.0 [get_ports clk]\n"
	case 3:
		b := make([]byte, 64+rng.Intn(512))
		rng.Read(b)
		return "testdata.bin", string(b)
	case 4:
		return "sim.do", "vlog *.v\nvsim -c top -do \"run -all; quit\"\n"
	default:
		return "notes.txt", "TODO: fix timing on the slow path; retest at 100 MHz.\n"
	}
}
