// Package corpus deterministically synthesizes the Verilog world this
// reproduction curates: realistic parameterized RTL modules across ~20
// design families, license and proprietary headers, repository layouts with
// duplicates and junk files, and the copyright-protected corpus used by the
// infringement benchmark. It stands in for GitHub's ~1.3M real Verilog
// files (see DESIGN.md, substitution table).
package corpus

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
)

// Module is one generated Verilog module.
type Module struct {
	Family string
	Name   string
	Source string
}

// Families lists the design families the generator knows, ordered by
// popularity (the Zipf order used for canonical emission). veval's problem
// suite draws on the same families, which is what lets a model trained on
// FreeSet solve a nonzero fraction of VerilogEval-style problems (the
// paper's functional-improvement mechanism).
var Families = []string{
	"counter", "adder", "mux2", "shiftreg", "comparator", "alu",
	"mux4", "subtractor", "gray", "parity", "regfile", "decoder",
	"priority_encoder", "clkdiv", "edgedet", "absval", "minmax",
	"popcount", "seqdet", "addsub",
}

// pick returns a random element.
func pick(rng *rand.Rand, opts ...string) string { return opts[rng.Intn(len(opts))] }

func pick2(rng *rand.Rand, opts ...int) int { return opts[rng.Intn(len(opts))] }

// synonyms provide the non-canonical port spellings. Canonical modules use
// the map key itself; non-canonical instances draw an alternative, so their
// bodies do not transfer verbatim onto the canonical problem interfaces —
// corpus coverage of a problem therefore comes from canonical instances
// only, which is the knob Table II is calibrated with.
var synonyms = map[string][]string{
	"a":        {"in0", "x", "opa", "lhs", "da"},
	"b":        {"in1", "y2", "opb", "rhs", "db"},
	"sum":      {"s_out", "total", "result", "acc"},
	"diff":     {"d_out", "delta", "res"},
	"borrow":   {"bout", "brw", "under"},
	"sel":      {"s", "select", "choose"},
	"y":        {"out", "dout", "o", "res"},
	"q":        {"count", "val", "data_q", "o_q"},
	"d":        {"din", "sin", "bit_in"},
	"clk":      {"clock", "clk_i", "ck"},
	"rst":      {"reset", "rst_i", "clr"},
	"en":       {"enable", "ce", "ena"},
	"in":       {"data_in", "vec", "i_bus"},
	"out":      {"data_out", "enc", "o_bus"},
	"valid":    {"vld", "any", "hit"},
	"eq":       {"equal", "same", "is_eq"},
	"lt":       {"less", "below", "is_lt"},
	"gt":       {"greater", "above", "is_gt"},
	"bin":      {"binary", "b_in", "value"},
	"gray":     {"g_out", "gcode", "enc_g"},
	"data":     {"payload", "word", "d_in"},
	"parity":   {"p_bit", "par", "chk"},
	"op":       {"opcode", "func", "operation"},
	"we":       {"wr_en", "wen", "write"},
	"waddr":    {"wr_addr", "wa", "windex"},
	"wdata":    {"wr_data", "wd", "wval"},
	"raddr":    {"rd_addr", "ra", "rindex"},
	"rdata":    {"rd_data", "rd", "rval"},
	"sig":      {"signal", "line", "s_in"},
	"pulse":    {"tick", "edge_o", "strobe"},
	"min":      {"lo", "smallest", "m_min"},
	"max":      {"hi", "largest", "m_max"},
	"mode":     {"sub_en", "ctl", "dir"},
	"din":      {"ser_in", "bitstream", "d_i"},
	"dout":     {"ser_out", "o_bit", "d_o"},
	"count":    {"ones", "total_set", "n_bits"},
	"detected": {"found", "match", "seen"},
	"clk_out":  {"clk_div", "slow_clk", "co"},
}

// names resolves a list of canonical port names for one module instance.
type names struct {
	rng   *rand.Rand
	canon bool
	used  map[string]string
}

func newNames(rng *rand.Rand, canon bool) *names {
	return &names{rng: rng, canon: canon, used: map[string]string{}}
}

func (n *names) p(canonical string) string {
	if n.canon {
		return canonical
	}
	if v, ok := n.used[canonical]; ok {
		return v
	}
	v := canonical
	if alts, ok := synonyms[canonical]; ok && n.rng.Intn(4) != 0 {
		v = alts[n.rng.Intn(len(alts))]
	}
	n.used[canonical] = v
	return v
}

// modName picks the module's own name.
func (n *names) modName(canonical string, alts ...string) string {
	if n.canon {
		return canonical
	}
	suffix := ""
	switch n.rng.Intn(4) {
	case 0:
		suffix = fmt.Sprintf("_%d", n.rng.Intn(100))
	case 1:
		suffix = pick(n.rng, "_core", "_unit", "_top", "_mod")
	}
	return pick(n.rng, append(alts, canonical)...) + suffix
}

// CanonWidths is the width set shared between canonical corpus emission and
// the veval problem suite: a model's corpus coverage of a (family, width)
// combination is exactly what makes the corresponding problem solvable.
var CanonWidths = []int{2, 4, 6, 8, 12, 16, 20, 24, 32, 48, 64}

var (
	genMu       sync.Mutex
	forcedWidth int
)

// GenerateCanonical deterministically produces the canonical module of a
// family at a given width — veval's reference implementations.
func GenerateCanonical(family string, width int) Module {
	genMu.Lock()
	defer genMu.Unlock()
	forcedWidth = width
	defer func() { forcedWidth = 0 }()
	return Generate(rand.New(rand.NewSource(1)), family, true)
}

// widthFor picks a vector width; canonical modules draw from CanonWidths.
func widthFor(rng *rand.Rand, canon bool) int {
	if forcedWidth > 0 {
		return forcedWidth
	}
	if canon {
		return CanonWidths[rng.Intn(len(CanonWidths))]
	}
	return pick2(rng, 4, 8, 8, 16, 32)
}

// familyZipf draws a family with Zipfian weights: counters and adders are
// everywhere on GitHub, sequence detectors are rare. The skew is what makes
// extra training data saturate (a base model already knows the common
// families; FreeSet mostly adds the tail) — the diminishing-returns shape
// of Table II.
func familyZipf(rng *rand.Rand) string {
	total := 0.0
	for i := range Families {
		total += 1 / float64(i+1)
	}
	r := rng.Float64() * total
	for i, f := range Families {
		r -= 1 / float64(i+1)
		if r <= 0 {
			return f
		}
	}
	return Families[len(Families)-1]
}

// Generate produces one module of the given family ("" = random family).
// Canonical naming (canon=true) fixes the interface to the form veval's
// problems use, so that corpus exposure transfers to benchmark problems.
func Generate(rng *rand.Rand, family string, canon bool) Module {
	if family == "" {
		if canon {
			family = familyZipf(rng)
		} else {
			family = Families[rng.Intn(len(Families))]
		}
	}
	g, ok := generators[family]
	if !ok {
		g = genCounter
	}
	return g(rng, canon)
}

var generators map[string]func(*rand.Rand, bool) Module

func init() {
	generators = map[string]func(*rand.Rand, bool) Module{
		"counter":          genCounter,
		"adder":            genAdder,
		"subtractor":       genSubtractor,
		"mux2":             genMux2,
		"mux4":             genMux4,
		"decoder":          genDecoder,
		"priority_encoder": genPriorityEncoder,
		"comparator":       genComparator,
		"shiftreg":         genShiftReg,
		"gray":             genGray,
		"parity":           genParity,
		"alu":              genALU,
		"regfile":          genRegfile,
		"clkdiv":           genClkDiv,
		"edgedet":          genEdgeDet,
		"absval":           genAbs,
		"minmax":           genMinMax,
		"popcount":         genPopcount,
		"seqdet":           genSeqDet,
		"addsub":           genAddSub,
	}
}

func genCounter(rng *rand.Rand, canon bool) Module {
	w := widthFor(rng, canon)
	nm := newNames(rng, canon)
	name := nm.modName("counter", "up_counter", "cnt", "binary_counter")
	clk, rst, q := nm.p("clk"), nm.p("rst"), nm.p("q")
	src := fmt.Sprintf(`module %s (
    input %s,
    input %s,
    output reg [%d:0] %s
);
  always @(posedge %s) begin
    if (%s)
      %s <= %d'd0;
    else
      %s <= %s + 1;
  end
endmodule`, name, clk, rst, w-1, q, clk, rst, q, w, q, q)
	return Module{Family: "counter", Name: name, Source: src}
}

func genAdder(rng *rand.Rand, canon bool) Module {
	w := widthFor(rng, canon)
	nm := newNames(rng, canon)
	name := nm.modName("adder", "add_unit", "sum_block")
	a, b, sum := nm.p("a"), nm.p("b"), nm.p("sum")
	src := fmt.Sprintf(`module %s (
    input  [%d:0] %s,
    input  [%d:0] %s,
    output [%d:0] %s
);
  assign %s = {1'b0, %s} + {1'b0, %s};
endmodule`, name, w-1, a, w-1, b, w, sum, sum, a, b)
	return Module{Family: "adder", Name: name, Source: src}
}

func genSubtractor(rng *rand.Rand, canon bool) Module {
	w := widthFor(rng, canon)
	nm := newNames(rng, canon)
	name := nm.modName("subtractor", "sub_unit", "diff_block")
	a, b, diff, borrow := nm.p("a"), nm.p("b"), nm.p("diff"), nm.p("borrow")
	src := fmt.Sprintf(`module %s (
    input  [%d:0] %s,
    input  [%d:0] %s,
    output [%d:0] %s,
    output        %s
);
  assign {%s, %s} = {1'b0, %s} - {1'b0, %s};
endmodule`, name, w-1, a, w-1, b, w-1, diff, borrow, borrow, diff, a, b)
	return Module{Family: "subtractor", Name: name, Source: src}
}

func genMux2(rng *rand.Rand, canon bool) Module {
	w := widthFor(rng, canon)
	nm := newNames(rng, canon)
	name := nm.modName("mux2", "mux_2to1", "sel_mux", "data_mux")
	a, b, sel, y := nm.p("a"), nm.p("b"), nm.p("sel"), nm.p("y")
	src := fmt.Sprintf(`module %s (
    input  [%d:0] %s,
    input  [%d:0] %s,
    input         %s,
    output [%d:0] %s
);
  assign %s = %s ? %s : %s;
endmodule`, name, w-1, a, w-1, b, sel, w-1, y, y, sel, b, a)
	return Module{Family: "mux2", Name: name, Source: src}
}

func genMux4(rng *rand.Rand, canon bool) Module {
	w := widthFor(rng, canon)
	nm := newNames(rng, canon)
	name := nm.modName("mux4", "mux_4to1", "quad_mux")
	sel, y := nm.p("sel"), nm.p("y")
	d := []string{"d0", "d1", "d2", "d3"}
	if !canon {
		base := pick(rng, "d", "in", "src")
		for i := range d {
			d[i] = fmt.Sprintf("%s%d", base, i)
		}
	}
	src := fmt.Sprintf(`module %s (
    input  [%d:0] %s,
    input  [%d:0] %s,
    input  [%d:0] %s,
    input  [%d:0] %s,
    input  [1:0]  %s,
    output reg [%d:0] %s
);
  always @(*) begin
    case (%s)
      2'd0: %s = %s;
      2'd1: %s = %s;
      2'd2: %s = %s;
      default: %s = %s;
    endcase
  end
endmodule`, name, w-1, d[0], w-1, d[1], w-1, d[2], w-1, d[3], sel, w-1, y,
		sel, y, d[0], y, d[1], y, d[2], y, d[3])
	return Module{Family: "mux4", Name: name, Source: src}
}

func genDecoder(rng *rand.Rand, canon bool) Module {
	nm := newNames(rng, canon)
	name := nm.modName("decoder3to8", "dec38", "addr_decoder")
	sel, en, y := nm.p("sel"), nm.p("en"), nm.p("y")
	src := fmt.Sprintf(`module %s (
    input  [2:0] %s,
    input        %s,
    output reg [7:0] %s
);
  always @(*) begin
    if (%s)
      %s = 8'b1 << %s;
    else
      %s = 8'b0;
  end
endmodule`, name, sel, en, y, en, y, sel, y)
	return Module{Family: "decoder", Name: name, Source: src}
}

func genPriorityEncoder(rng *rand.Rand, canon bool) Module {
	nm := newNames(rng, canon)
	name := nm.modName("priority_encoder", "prio_enc", "first_one")
	in, out, valid := nm.p("in"), nm.p("out"), nm.p("valid")
	src := fmt.Sprintf(`module %s (
    input  [7:0] %s,
    output reg [2:0] %s,
    output reg       %s
);
  integer i;
  always @(*) begin
    %s = 3'd0;
    %s = 1'b0;
    for (i = 7; i >= 0; i = i - 1) begin
      if (%s[i] && !%s) begin
        %s = i[2:0];
        %s = 1'b1;
      end
    end
  end
endmodule`, name, in, out, valid, out, valid, in, valid, out, valid)
	return Module{Family: "priority_encoder", Name: name, Source: src}
}

func genComparator(rng *rand.Rand, canon bool) Module {
	w := widthFor(rng, canon)
	nm := newNames(rng, canon)
	name := nm.modName("comparator", "cmp_unit", "magnitude_cmp")
	a, b, eq, lt, gt := nm.p("a"), nm.p("b"), nm.p("eq"), nm.p("lt"), nm.p("gt")
	src := fmt.Sprintf(`module %s (
    input  [%d:0] %s,
    input  [%d:0] %s,
    output        %s,
    output        %s,
    output        %s
);
  assign %s = (%s == %s);
  assign %s = (%s < %s);
  assign %s = (%s > %s);
endmodule`, name, w-1, a, w-1, b, eq, lt, gt, eq, a, b, lt, a, b, gt, a, b)
	return Module{Family: "comparator", Name: name, Source: src}
}

func genShiftReg(rng *rand.Rand, canon bool) Module {
	w := widthFor(rng, canon)
	nm := newNames(rng, canon)
	name := nm.modName("shiftreg", "shift_register", "sipo")
	clk, rst, d, q := nm.p("clk"), nm.p("rst"), nm.p("d"), nm.p("q")
	src := fmt.Sprintf(`module %s (
    input %s,
    input %s,
    input %s,
    output reg [%d:0] %s
);
  always @(posedge %s) begin
    if (%s)
      %s <= %d'd0;
    else
      %s <= {%s[%d:0], %s};
  end
endmodule`, name, clk, rst, d, w-1, q, clk, rst, q, w, q, q, w-2, d)
	return Module{Family: "shiftreg", Name: name, Source: src}
}

func genGray(rng *rand.Rand, canon bool) Module {
	w := widthFor(rng, canon)
	nm := newNames(rng, canon)
	name := nm.modName("bin2gray", "gray_encoder", "gray_conv")
	bin, gray := nm.p("bin"), nm.p("gray")
	src := fmt.Sprintf(`module %s (
    input  [%d:0] %s,
    output [%d:0] %s
);
  assign %s = %s ^ (%s >> 1);
endmodule`, name, w-1, bin, w-1, gray, gray, bin, bin)
	return Module{Family: "gray", Name: name, Source: src}
}

func genParity(rng *rand.Rand, canon bool) Module {
	w := widthFor(rng, canon)
	nm := newNames(rng, canon)
	name := nm.modName("parity_gen", "parity", "even_parity")
	data, parity := nm.p("data"), nm.p("parity")
	src := fmt.Sprintf(`module %s (
    input  [%d:0] %s,
    output        %s
);
  assign %s = ^%s;
endmodule`, name, w-1, data, parity, parity, data)
	return Module{Family: "parity", Name: name, Source: src}
}

func genALU(rng *rand.Rand, canon bool) Module {
	w := widthFor(rng, canon)
	nm := newNames(rng, canon)
	name := nm.modName("alu", "alu_core", "arith_unit")
	a, b, op, y := nm.p("a"), nm.p("b"), nm.p("op"), nm.p("y")
	src := fmt.Sprintf(`module %s (
    input  [%d:0] %s,
    input  [%d:0] %s,
    input  [2:0]  %s,
    output reg [%d:0] %s
);
  always @(*) begin
    case (%s)
      3'd0: %s = %s + %s;
      3'd1: %s = %s - %s;
      3'd2: %s = %s & %s;
      3'd3: %s = %s | %s;
      3'd4: %s = %s ^ %s;
      3'd5: %s = ~%s;
      3'd6: %s = %s << 1;
      default: %s = %s >> 1;
    endcase
  end
endmodule`, name, w-1, a, w-1, b, op, w-1, y,
		op, y, a, b, y, a, b, y, a, b, y, a, b, y, a, b, y, a, y, a, y, a)
	return Module{Family: "alu", Name: name, Source: src}
}

func genRegfile(rng *rand.Rand, canon bool) Module {
	w := widthFor(rng, canon)
	nm := newNames(rng, canon)
	name := nm.modName("regfile", "register_file", "rf8")
	clk, we, waddr, wdata, raddr, rdata :=
		nm.p("clk"), nm.p("we"), nm.p("waddr"), nm.p("wdata"), nm.p("raddr"), nm.p("rdata")
	mem := "mem"
	if !canon {
		mem = pick(rng, "mem", "regs", "bank", "storage")
	}
	src := fmt.Sprintf(`module %s (
    input %s,
    input %s,
    input [2:0] %s,
    input [%d:0] %s,
    input [2:0] %s,
    output [%d:0] %s
);
  reg [%d:0] %s [0:7];
  always @(posedge %s) begin
    if (%s)
      %s[%s] <= %s;
  end
  assign %s = %s[%s];
endmodule`, name, clk, we, waddr, w-1, wdata, raddr, w-1, rdata,
		w-1, mem, clk, we, mem, waddr, wdata, rdata, mem, raddr)
	return Module{Family: "regfile", Name: name, Source: src}
}

func genClkDiv(rng *rand.Rand, canon bool) Module {
	div := 4
	if !canon {
		div = pick2(rng, 2, 4, 8, 16)
	}
	nm := newNames(rng, canon)
	name := nm.modName("clkdiv", "clock_divider", "div_by_n")
	clk, rst, clkOut := nm.p("clk"), nm.p("rst"), nm.p("clk_out")
	cnt := "cnt"
	if !canon {
		cnt = pick(rng, "cnt", "div_cnt", "ticks")
	}
	src := fmt.Sprintf(`module %s (
    input %s,
    input %s,
    output reg %s
);
  reg [7:0] %s;
  always @(posedge %s) begin
    if (%s) begin
      %s <= 8'd0;
      %s <= 1'b0;
    end else if (%s == 8'd%d) begin
      %s <= 8'd0;
      %s <= ~%s;
    end else begin
      %s <= %s + 1;
    end
  end
endmodule`, name, clk, rst, clkOut, cnt, clk, rst, cnt, clkOut,
		cnt, div-1, cnt, clkOut, clkOut, cnt, cnt)
	return Module{Family: "clkdiv", Name: name, Source: src}
}

func genEdgeDet(rng *rand.Rand, canon bool) Module {
	nm := newNames(rng, canon)
	name := nm.modName("edge_detector", "rising_edge", "edge_det")
	clk, sig, pulse := nm.p("clk"), nm.p("sig"), nm.p("pulse")
	prev := "prev"
	if !canon {
		prev = pick(rng, "prev", "last", "sig_d")
	}
	src := fmt.Sprintf(`module %s (
    input %s,
    input %s,
    output %s
);
  reg %s;
  always @(posedge %s)
    %s <= %s;
  assign %s = %s & ~%s;
endmodule`, name, clk, sig, pulse, prev, clk, prev, sig, pulse, sig, prev)
	return Module{Family: "edgedet", Name: name, Source: src}
}

func genAbs(rng *rand.Rand, canon bool) Module {
	w := widthFor(rng, canon)
	nm := newNames(rng, canon)
	name := nm.modName("absval", "abs_unit", "magnitude")
	in, out := nm.p("in"), nm.p("out")
	src := fmt.Sprintf(`module %s (
    input  signed [%d:0] %s,
    output [%d:0] %s
);
  assign %s = %s[%d] ? (~%s + 1'b1) : %s;
endmodule`, name, w-1, in, w-1, out, out, in, w-1, in, in)
	return Module{Family: "absval", Name: name, Source: src}
}

func genMinMax(rng *rand.Rand, canon bool) Module {
	w := widthFor(rng, canon)
	nm := newNames(rng, canon)
	name := nm.modName("minmax", "min_max", "extrema")
	a, b, mn, mx := nm.p("a"), nm.p("b"), nm.p("min"), nm.p("max")
	src := fmt.Sprintf(`module %s (
    input  [%d:0] %s,
    input  [%d:0] %s,
    output [%d:0] %s,
    output [%d:0] %s
);
  assign %s = (%s < %s) ? %s : %s;
  assign %s = (%s < %s) ? %s : %s;
endmodule`, name, w-1, a, w-1, b, w-1, mn, w-1, mx,
		mn, a, b, a, b, mx, a, b, b, a)
	return Module{Family: "minmax", Name: name, Source: src}
}

func genPopcount(rng *rand.Rand, canon bool) Module {
	nm := newNames(rng, canon)
	name := nm.modName("popcount", "ones_counter", "bit_count")
	in, count := nm.p("in"), nm.p("count")
	src := fmt.Sprintf(`module %s (
    input  [7:0] %s,
    output reg [3:0] %s
);
  integer i;
  always @(*) begin
    %s = 4'd0;
    for (i = 0; i < 8; i = i + 1)
      %s = %s + {3'b0, %s[i]};
  end
endmodule`, name, in, count, count, count, count, in)
	return Module{Family: "popcount", Name: name, Source: src}
}

func genSeqDet(rng *rand.Rand, canon bool) Module {
	nm := newNames(rng, canon)
	name := nm.modName("seq101", "seq_detector", "pattern_101")
	clk, rst, din, det := nm.p("clk"), nm.p("rst"), nm.p("din"), nm.p("detected")
	src := fmt.Sprintf(`module %s (
    input %s,
    input %s,
    input %s,
    output reg %s
);
  localparam S0 = 2'd0;
  localparam S1 = 2'd1;
  localparam S2 = 2'd2;
  reg [1:0] state;
  always @(posedge %s) begin
    if (%s) begin
      state <= S0;
      %s <= 1'b0;
    end else begin
      %s <= 1'b0;
      case (state)
        S0: state <= %s ? S1 : S0;
        S1: state <= %s ? S1 : S2;
        S2: begin
          if (%s) begin
            %s <= 1'b1;
            state <= S1;
          end else begin
            state <= S0;
          end
        end
        default: state <= S0;
      endcase
    end
  end
endmodule`, name, clk, rst, din, det, clk, rst, det, det, din, din, din, det)
	return Module{Family: "seqdet", Name: name, Source: src}
}

func genAddSub(rng *rand.Rand, canon bool) Module {
	w := widthFor(rng, canon)
	nm := newNames(rng, canon)
	name := nm.modName("addsub", "add_sub", "arith_as")
	a, b, mode, y := nm.p("a"), nm.p("b"), nm.p("mode"), nm.p("y")
	src := fmt.Sprintf(`module %s (
    input  [%d:0] %s,
    input  [%d:0] %s,
    input         %s,
    output [%d:0] %s
);
  assign %s = %s ? (%s - %s) : (%s + %s);
endmodule`, name, w-1, a, w-1, b, mode, w-1, y, y, mode, a, b, a, b)
	return Module{Family: "addsub", Name: name, Source: src}
}

// CorruptSyntax damages a module's source so it fails the syntax check
// (simulating broken files in the wild).
func CorruptSyntax(rng *rand.Rand, src string) string {
	switch rng.Intn(4) {
	case 0:
		return strings.Replace(src, "endmodule", "", 1)
	case 1:
		return strings.Replace(src, ");", ");;(", 1)
	case 2:
		return strings.Replace(src, "assign", "assgin kk", 1) + "\n)"
	default:
		out := strings.Replace(src, "begin", "begin begin (", 1)
		if out == src {
			// Assign-only module without a begin: break the header instead.
			out = strings.Replace(src, "module", "module (", 1)
		}
		return out
	}
}

// CanonVariant rewrites a canonical module into a behavioral near-miss with
// the identical interface: an off-by-one, a flipped operator, an inverted
// select. The rewrites keep the source parseable and simulable.
func CanonVariant(rng *rand.Rand, src string) string {
	type rewrite struct{ from, to string }
	candidates := []rewrite{
		{"q + 1", "q + 2"},
		{"a + b", "a - b"},
		{"a - b", "a + b"},
		{"sel ? b : a", "sel ? a : b"},
		{"(a < b)", "(a > b)"},
		{"bin ^ (bin >> 1)", "bin ^ (bin << 1)"},
		{"^data", "~^data"},
		{"& ~prev", "| ~prev"},
		{"<< sel", ">> sel"},
		{"mode ? (a - b) : (a + b)", "mode ? (a + b) : (a - b)"},
		{"q + 1", "q - 1"},
		{"{q[", "{~q["},
	}
	order := rng.Perm(len(candidates))
	for _, i := range order {
		c := candidates[i]
		if strings.Contains(src, c.from) {
			return strings.Replace(src, c.from, c.to, 1)
		}
	}
	// Fallback: invert the first output assignment's RHS.
	if i := strings.Index(src, "assign "); i >= 0 {
		if j := strings.Index(src[i:], "= "); j >= 0 {
			k := i + j + 2
			return src[:k] + "~(" + strings.Replace(src[k:], ";", ");", 1)
		}
	}
	return src
}

// MutateIdentifiers renames the module and tweaks literals, producing a
// near-duplicate (for dedup realism: files copied between repos with small
// local edits).
func MutateIdentifiers(rng *rand.Rand, src string) string {
	out := src
	if i := strings.Index(out, "module "); i >= 0 {
		j := i + len("module ")
		k := j
		for k < len(out) && (out[k] == '_' || out[k] >= 'a' && out[k] <= 'z' || out[k] >= '0' && out[k] <= '9') {
			k++
		}
		out = out[:j] + out[j:k] + fmt.Sprintf("_v%d", rng.Intn(10)) + out[k:]
	}
	// Append a harmless localized edit.
	out = strings.Replace(out, "endmodule",
		fmt.Sprintf("  // local fix %d\nendmodule", rng.Intn(1000)), 1)
	return out
}
