package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// ProtectedFile is one copyright-protected Verilog file: a proprietary
// header plus a lexically distinctive "secret IP" implementation. The same
// files double as (a) the benchmark's protected reference corpus (§III-A)
// and (b) the contamination injected into the simulated GitHub world.
type ProtectedFile struct {
	Name    string
	Company string
	Source  string // header + body
	Body    string // code only
	// HasEmbeddedKey marks files carrying key material in comments (the
	// paper reports finding "possible encryption keys").
	HasEmbeddedKey bool
}

// BuildProtectedCorpus generates n protected files deterministically.
func BuildProtectedCorpus(seed int64, n int) []ProtectedFile {
	rng := rand.New(rand.NewSource(seed))
	out := make([]ProtectedFile, 0, n)
	for i := 0; i < n; i++ {
		company := companies[rng.Intn(len(companies))]
		body, hasKey := protectedBody(rng, i)
		header := proprietaryHeader(rng, company)
		out = append(out, ProtectedFile{
			Name:           fmt.Sprintf("ip_%04d.v", i),
			Company:        company,
			Source:         header + body,
			Body:           body,
			HasEmbeddedKey: hasKey,
		})
	}
	return out
}

// protectedBody builds a distinctive module. Random "magic" constants make
// every file lexically unique, so cosine similarity cleanly separates
// regurgitation from coincidence.
func protectedBody(rng *rand.Rand, idx int) (string, bool) {
	switch rng.Intn(4) {
	case 0:
		return cipherRound(rng, idx)
	case 1:
		return scrambler(rng, idx)
	case 2:
		return checksum(rng, idx)
	default:
		return busBridge(rng, idx)
	}
}

func hex32(rng *rand.Rand) string { return fmt.Sprintf("32'h%08X", rng.Uint32()) }

// ident invents a fresh identifier so every protected file has its own
// vocabulary; shared structure alone then cannot push cosine similarity
// over the violation threshold.
func ident(rng *rand.Rand, role string) string {
	syll := []string{"ka", "zor", "mel", "tri", "vex", "qua", "lum", "dra",
		"sil", "nor", "fex", "bol", "ryn", "tox", "gim", "pax"}
	return fmt.Sprintf("%s_%s%s%d", role, syll[rng.Intn(len(syll))], syll[rng.Intn(len(syll))], rng.Intn(100))
}

func cipherRound(rng *rand.Rand, idx int) (string, bool) {
	name := fmt.Sprintf("%s_round_%04d", ident(rng, "cr"), idx)
	din := ident(rng, "d")
	key := ident(rng, "k")
	dout := ident(rng, "q")
	hasKey := rng.Intn(3) == 0
	keyComment := ""
	if hasKey {
		keyComment = fmt.Sprintf("  // encryption_key = 64'h%08X_%08X\n", rng.Uint32(), rng.Uint32())
	}
	stages := 4 + rng.Intn(8)
	var sb strings.Builder
	fmt.Fprintf(&sb, `module %s (
    input  [31:0] %s,
    input  [31:0] %s,
    output [31:0] %s
);
%s`, name, din, key, dout, keyComment)
	prev := din
	for s := 0; s < stages; s++ {
		cur := ident(rng, "st")
		rot := 1 + rng.Intn(15)
		switch rng.Intn(7) {
		case 0:
			fmt.Fprintf(&sb, "  wire [31:0] %s = %s ^ %s;\n", cur, prev, hex32(rng))
		case 1:
			fmt.Fprintf(&sb, "  wire [31:0] %s = {%s[%d:0], %s[31:%d]} + %s;\n",
				cur, prev, 31-rot, prev, 32-rot, hex32(rng))
		case 2:
			fmt.Fprintf(&sb, "  wire [31:0] %s = %s ^ (%s + %s);\n", cur, prev, key, hex32(rng))
		case 3:
			fmt.Fprintf(&sb, "  wire [31:0] %s = (%s + %s) ^ {%s[7:0], %s[31:8]};\n",
				cur, prev, hex32(rng), prev, prev)
		case 4:
			fmt.Fprintf(&sb, "  wire [31:0] %s = ~%s + (%s ^ %s);\n", cur, prev, key, hex32(rng))
		case 5:
			fmt.Fprintf(&sb, "  wire [31:0] %s = {%s[15:0], %s[31:16]} & (%s | %s);\n",
				cur, prev, prev, key, hex32(rng))
		default:
			fmt.Fprintf(&sb, "  wire [31:0] %s = (%s << %d) | (%s >> %d);\n",
				cur, prev, rot, prev, 32-rot)
		}
		prev = cur
	}
	fmt.Fprintf(&sb, "  assign %s = {%s[15:0], %s[31:16]};\nendmodule", dout, prev, prev)
	return sb.String(), hasKey
}

func scrambler(rng *rand.Rand, idx int) (string, bool) {
	n := 8 + rng.Intn(24) // LFSR length 8..31
	taps := fmt.Sprintf("%d'h%X", n, (rng.Int63()&((1<<n)-1))|1)
	seedv := fmt.Sprintf("%d'h%X", n, (rng.Int63()&((1<<n)-1))|1)
	name := fmt.Sprintf("%s_%04d", ident(rng, "scr"), idx)
	clk := ident(rng, "ck")
	rst := ident(rng, "rs")
	din := ident(rng, "si")
	dout := ident(rng, "so")
	state := ident(rng, "lf")
	fb := ident(rng, "fb")
	src := fmt.Sprintf(`module %s (
    input %s,
    input %s,
    input %s,
    output %s
);
  reg [%d:0] %s;
  wire %s = ^(%s & %s);
  always @(posedge %s) begin
    if (%s)
      %s <= %s;
    else
      %s <= {%s[%d:0], %s};
  end
  assign %s = %s ^ %s[%d];
endmodule`, name, clk, rst, din, dout, n-1, state, fb, state, taps,
		clk, rst, state, seedv, state, state, n-2, fb, dout, din, state, n-1)
	return src, false
}

func checksum(rng *rand.Rand, idx int) (string, bool) {
	w := []int{8, 16, 24, 32}[rng.Intn(4)]
	poly := fmt.Sprintf("%d'h%X", w, (rng.Int63()&((1<<w)-1))|1)
	init := fmt.Sprintf("%d'h%X", w, rng.Int63()&((1<<w)-1))
	name := fmt.Sprintf("%s_%04d", ident(rng, "chk"), idx)
	clk := ident(rng, "ck")
	rst := ident(rng, "rs")
	data := ident(rng, "db")
	valid := ident(rng, "vld")
	crc := ident(rng, "cs")
	next := ident(rng, "nx")
	src := fmt.Sprintf(`module %s (
    input %s,
    input %s,
    input [%d:0] %s,
    input %s,
    output reg [%d:0] %s
);
  integer i;
  reg [%d:0] %s;
  always @(*) begin
    %s = %s ^ %s;
    for (i = 0; i < %d; i = i + 1) begin
      if (%s[%d])
        %s = {%s[%d:0], 1'b0} ^ %s;
      else
        %s = {%s[%d:0], 1'b0};
    end
  end
  always @(posedge %s) begin
    if (%s)
      %s <= %s;
    else if (%s)
      %s <= %s;
  end
endmodule`, name, clk, rst, w-1, data, valid, w-1, crc, w-1, next,
		next, crc, data, w, next, w-1, next, next, w-2, poly, next, next, w-2,
		clk, rst, crc, init, valid, crc, next)
	return src, false
}

func busBridge(rng *rand.Rand, idx int) (string, bool) {
	name := fmt.Sprintf("%s_%04d", ident(rng, "brg"), idx)
	addr := ident(rng, "ad")
	wdata := ident(rng, "wd")
	wen := ident(rng, "we")
	rdata := ident(rng, "rd")
	ctrl := ident(rng, "cr")
	stat := ident(rng, "sr")
	entries := 6 + rng.Intn(12)
	var sb strings.Builder
	fmt.Fprintf(&sb, `module %s (
    input  [7:0]  %s,
    input  [31:0] %s,
    input         %s,
    output reg [31:0] %s
);
  reg [31:0] %s;
  reg [31:0] %s;
  always @(*) begin
    case (%s)
`, name, addr, wdata, wen, rdata, ctrl, stat, addr)
	used := map[int]bool{}
	for e := 0; e < entries; e++ {
		a := rng.Intn(256)
		for used[a] {
			a = rng.Intn(256)
		}
		used[a] = true
		switch rng.Intn(7) {
		case 0:
			fmt.Fprintf(&sb, "      8'd%d: %s = %s;\n", a, rdata, ctrl)
		case 1:
			fmt.Fprintf(&sb, "      8'd%d: %s = %s ^ %s;\n", a, rdata, stat, hex32(rng))
		case 2:
			fmt.Fprintf(&sb, "      8'd%d: %s = %s;\n", a, rdata, hex32(rng))
		case 3:
			fmt.Fprintf(&sb, "      8'd%d: %s = {%s[15:0], %s[31:16]};\n", a, rdata, ctrl, stat)
		case 4:
			fmt.Fprintf(&sb, "      8'd%d: %s = %s + %s;\n", a, rdata, stat, hex32(rng))
		case 5:
			fmt.Fprintf(&sb, "      8'd%d: %s = ~%s | %s;\n", a, rdata, ctrl, hex32(rng))
		default:
			fmt.Fprintf(&sb, "      8'd%d: %s = %s & %s;\n", a, rdata, stat, hex32(rng))
		}
	}
	fmt.Fprintf(&sb, `      default: %s = 32'h%08X | {24'b0, %s};
    endcase
  end
  always @(*) begin
    %s = %s ? %s : 32'b0;
    %s = {%s[15:0], 16'h%04X};
  end
endmodule`, rdata, rng.Uint32(), addr, ctrl, wen, wdata, stat, wdata, rng.Intn(0xFFFF))
	return sb.String(), false
}

// PromptNames returns the protected file names (helper for reports).
func PromptNames(files []ProtectedFile) []string {
	out := make([]string, len(files))
	for i, f := range files {
		out[i] = f.Name
	}
	return out
}

// GeneralText generates n "pre-training documents" of generic English and
// software-flavored text — the base models' world knowledge, standing in
// for the web-scale pre-training mix of Llama/CodeGen-class models.
func GeneralText(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	subjects := []string{"the compiler", "a register", "the network", "this function",
		"the scheduler", "an interrupt", "the cache", "a pipeline", "the kernel", "the parser"}
	verbs := []string{"handles", "ignores", "processes", "transforms", "rejects",
		"buffers", "emits", "decodes", "allocates", "retires"}
	objects := []string{"each request", "every packet", "the input stream", "stale data",
		"the configuration", "all branches", "pending writes", "the event queue"}
	snippets := []string{
		"for (int i = 0; i < n; i++) { sum += a[i]; }",
		"def main():\n    print('hello world')",
		"if err != nil { return err }",
		"SELECT name FROM users WHERE active = 1;",
		"while (!done) { step(); }",
	}
	docs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		var sb strings.Builder
		sentences := 20 + rng.Intn(60)
		for s := 0; s < sentences; s++ {
			fmt.Fprintf(&sb, "%s %s %s. ",
				subjects[rng.Intn(len(subjects))],
				verbs[rng.Intn(len(verbs))],
				objects[rng.Intn(len(objects))])
			if rng.Intn(8) == 0 {
				sb.WriteString(snippets[rng.Intn(len(snippets))])
				sb.WriteString(" ")
			}
		}
		docs = append(docs, sb.String())
	}
	return docs
}
