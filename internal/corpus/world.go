package corpus

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"freehw/internal/license"
)

// File is one file inside a simulated repository, with ground-truth flags
// the curation pipeline must rediscover.
type File struct {
	Path      string
	Content   string
	IsVerilog bool
	Master    int // index of the master file this is a copy of; -1 for junk
	Protected bool
	Broken    bool
}

// Repo is one simulated GitHub repository.
type Repo struct {
	Owner       string
	Name        string
	CreatedAt   time.Time
	License     license.License // ground truth; Unknown = no license
	LicenseFile string          // LICENSE body, "" if absent
	Stars       int
	Files       []File
}

// FullName returns owner/name.
func (r Repo) FullName() string { return r.Owner + "/" + r.Name }

// World is the simulated GitHub: the population the scraper and curation
// pipeline operate on.
type World struct {
	Cfg       Config
	Repos     []Repo
	Protected []ProtectedFile // the full protected corpus (benchmark + injection pool)
	// PlacedProtected lists the pool indices of protected files that exist
	// somewhere in the world (in placement order, with repeats removed).
	PlacedProtected []int
}

// Config sizes the world. Scale 1.0 targets 1:100 of the paper's GitHub
// snapshot: ~13,000 Verilog files so all funnel proportions can be compared
// against the paper directly.
type Config struct {
	Seed                 int64
	Scale                float64
	TotalVerilogFiles    int     // derived from Scale when 0
	NumRepos             int     // derived when 0
	LicensedRepoFraction float64 // default 0.468 (608,180 / 1.3M)
	UniqueFraction       float64 // master files / total (tunes dedup removal toward 62.5%)
	ProtectedFraction    float64 // protected copies / total (paper: ≈1%)
	BrokenFraction       float64 // syntax-broken masters
	CanonicalFraction    float64 // modules emitted with canonical interfaces
	CanonVariantFraction float64 // canonical emissions that are trap variants
	ProtectedPoolSize    int     // size of the protected corpus (paper: ~2K)
	MegaFile             bool    // include the extreme-outlier file (Figure 2)
}

// DefaultConfig returns the paper-proportioned world at the given scale.
func DefaultConfig(scale float64) Config {
	if scale <= 0 {
		scale = 1
	}
	return Config{
		Seed:                 1,
		Scale:                scale,
		LicensedRepoFraction: 0.468,
		UniqueFraction:       0.24,
		ProtectedFraction:    0.010,
		BrokenFraction:       0.025,
		CanonicalFraction:    0.04,
		CanonVariantFraction: 0.52,
		ProtectedPoolSize:    2000,
		MegaFile:             scale >= 0.25,
	}
}

func (c *Config) fill() {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.TotalVerilogFiles == 0 {
		c.TotalVerilogFiles = int(13000 * c.Scale)
	}
	if c.TotalVerilogFiles < 20 {
		c.TotalVerilogFiles = 20
	}
	if c.NumRepos == 0 {
		c.NumRepos = int(520 * c.Scale)
	}
	if c.NumRepos < 4 {
		c.NumRepos = 4
	}
	if c.LicensedRepoFraction == 0 {
		c.LicensedRepoFraction = 0.468
	}
	if c.UniqueFraction == 0 {
		c.UniqueFraction = 0.36
	}
	if c.CanonicalFraction == 0 {
		c.CanonicalFraction = 0.30
	}
	if c.ProtectedPoolSize == 0 {
		c.ProtectedPoolSize = 2000
	}
}

// licenseMix approximates GitHub's license distribution among the accepted set.
var licenseMix = []struct {
	l license.License
	w int
}{
	{license.MIT, 35}, {license.Apache20, 15}, {license.GPL30, 12},
	{license.GPL20, 10}, {license.BSD3Clause, 10}, {license.BSD2Clause, 5},
	{license.LGPL, 5}, {license.MPL20, 4}, {license.CC, 2}, {license.EPL, 2},
}

func pickLicense(rng *rand.Rand) license.License {
	total := 0
	for _, e := range licenseMix {
		total += e.w
	}
	r := rng.Intn(total)
	for _, e := range licenseMix {
		r -= e.w
		if r < 0 {
			return e.l
		}
	}
	return license.MIT
}

// masterFile is one unique Verilog file body (before repo placement).
type masterFile struct {
	body   string
	broken bool
}

// BuildWorld deterministically generates the simulated GitHub.
func BuildWorld(cfg Config) *World {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &World{Cfg: cfg}
	w.Protected = BuildProtectedCorpus(cfg.Seed+77, cfg.ProtectedPoolSize)

	// 1. Repositories with sizes, dates, licenses.
	repoWeights := make([]float64, cfg.NumRepos)
	var weightSum float64
	for i := range repoWeights {
		// Pareto-ish repo sizes: a few huge IP collections, many small ones.
		repoWeights[i] = 1 / (0.05 + rng.Float64())
		weightSum += repoWeights[i]
	}
	start := time.Date(2008, 4, 1, 0, 0, 0, 0, time.UTC)
	span := time.Date(2024, 12, 1, 0, 0, 0, 0, time.UTC).Sub(start)
	for i := 0; i < cfg.NumRepos; i++ {
		r := Repo{
			Owner:     pick(rng, authors...),
			Name:      fmt.Sprintf("%s-%s-%d", pick(rng, "verilog", "rtl", "fpga", "hdl", "soc", "ip"), pick(rng, "cores", "lib", "playground", "designs", "blocks", "lab"), i),
			CreatedAt: start.Add(time.Duration(rng.Int63n(int64(span)))),
			Stars:     rng.Intn(500),
		}
		if rng.Float64() < cfg.LicensedRepoFraction {
			r.License = pickLicense(rng)
			r.LicenseFile = licenseText(r.License)
		}
		w.Repos = append(w.Repos, r)
	}

	// 2. Master (unique) Verilog files.
	numMasters := int(float64(cfg.TotalVerilogFiles) * cfg.UniqueFraction)
	if numMasters < 10 {
		numMasters = 10
	}
	masters := make([]masterFile, numMasters)
	for i := range masters {
		// The header is part of the master: copied files carry the original
		// author's header with them, which is what makes them duplicates.
		var hdr string
		if rng.Float64() < 0.7 {
			hdr = licenseHeader(rng, pickLicense(rng))
		} else {
			hdr = licenseHeader(rng, license.Unknown)
		}
		masters[i] = masterFile{body: hdr + w.genFileBody(rng)}
		if rng.Float64() < cfg.BrokenFraction {
			masters[i].body = CorruptSyntax(rng, masters[i].body)
			masters[i].broken = true
		}
	}

	// 3. Placements: every master once, plus duplicate copies up to the
	// file budget, copy counts Zipf-ish so popular IP cores spread widely.
	type placement struct {
		master int
		mutate bool
	}
	var placements []placement
	for i := range masters {
		placements = append(placements, placement{master: i})
	}
	for len(placements) < cfg.TotalVerilogFiles {
		m := int(float64(numMasters) * rng.Float64() * rng.Float64()) // biased to low indices
		if m >= numMasters {
			m = numMasters - 1
		}
		placements = append(placements, placement{master: m, mutate: rng.Float64() < 0.15})
	}
	rng.Shuffle(len(placements), func(i, j int) {
		placements[i], placements[j] = placements[j], placements[i]
	})

	// 4. Assign placements to repos by weight.
	pickRepo := func() *Repo {
		r := rng.Float64() * weightSum
		for i := range repoWeights {
			r -= repoWeights[i]
			if r <= 0 {
				return &w.Repos[i]
			}
		}
		return &w.Repos[len(w.Repos)-1]
	}
	dirs := []string{"", "src/", "rtl/", "hdl/", "cores/", "lib/"}
	for pi, pl := range placements {
		repo := pickRepo()
		body := masters[pl.master].body
		if pl.mutate {
			// A "local fix": trailing comment only, so the copy still
			// exceeds the 0.85 dedup threshold.
			body = body + fmt.Sprintf("\n// patched locally, rev %d\n", rng.Intn(100))
		}
		repo.Files = append(repo.Files, File{
			Path:      fmt.Sprintf("%sm%05d.v", dirs[rng.Intn(len(dirs))], pi),
			Content:   body,
			IsVerilog: true,
			Master:    pl.master,
			Broken:    masters[pl.master].broken,
		})
	}

	// 5. Protected contamination: ~ProtectedFraction of all Verilog files.
	numProtected := int(float64(cfg.TotalVerilogFiles) * cfg.ProtectedFraction)
	placedSeen := map[int]bool{}
	for i := 0; i < numProtected; i++ {
		pi := rng.Intn(len(w.Protected))
		pf := w.Protected[pi]
		repo := pickRepo()
		repo.Files = append(repo.Files, File{
			Path:      fmt.Sprintf("vendor/%s", pf.Name),
			Content:   pf.Source,
			IsVerilog: true,
			Master:    -1,
			Protected: true,
		})
		if !placedSeen[pi] {
			placedSeen[pi] = true
			w.PlacedProtected = append(w.PlacedProtected, pi)
		}
	}

	// 6. The extreme outlier (Figure 2's ~90M-char file, scaled 1:100).
	if cfg.MegaFile {
		target := int(900000 * cfg.Scale)
		if target < 50000 {
			target = 50000
		}
		var sb strings.Builder
		sb.WriteString(licenseHeader(rng, license.MIT))
		for sb.Len() < target {
			sb.WriteString(Generate(rng, "", false).Source)
			sb.WriteString("\n\n")
		}
		repo := pickRepo()
		if repo.License == license.Unknown {
			repo.License = license.MIT
			repo.LicenseFile = licenseText(license.MIT)
		}
		repo.Files = append(repo.Files, File{
			Path: "generated/netlist_dump.v", Content: sb.String(),
			IsVerilog: true, Master: -2,
		})
	}

	// 7. Junk files in every repo.
	for i := range w.Repos {
		n := 1 + rng.Intn(6)
		for j := 0; j < n; j++ {
			name, content := junkFile(rng)
			w.Repos[i].Files = append(w.Repos[i].Files, File{
				Path: fmt.Sprintf("%s", uniquePath(name, j)), Content: content, Master: -1,
			})
		}
	}
	return w
}

func uniquePath(name string, j int) string {
	if j == 0 {
		return name
	}
	if i := strings.LastIndexByte(name, '.'); i > 0 {
		return fmt.Sprintf("%s_%d%s", name[:i], j, name[i:])
	}
	return fmt.Sprintf("%s_%d", name, j)
}

// genFileBody builds one unique file body of one or more modules, with the
// heavy-tailed size distribution behind Figure 2.
func (w *World) genFileBody(rng *rand.Rand) string {
	var count int
	switch r := rng.Float64(); {
	case r < 0.55:
		count = 1
	case r < 0.80:
		count = 2 + rng.Intn(2)
	case r < 0.95:
		count = 4 + rng.Intn(5)
	case r < 0.995:
		count = 9 + rng.Intn(22)
	default:
		count = 31 + rng.Intn(90)
	}
	var sb strings.Builder
	for i := 0; i < count; i++ {
		canon := rng.Float64() < w.Cfg.CanonicalFraction
		m := Generate(rng, "", canon)
		src := m.Source
		if canon && rng.Float64() < w.Cfg.CanonVariantFraction {
			// A trap variant: same canonical interface, subtly different
			// behavior. Real corpora are full of these, and they are what
			// makes a model's pass rate sample-dependent (pass@10 > pass@1).
			src = CanonVariant(rng, src)
		}
		sb.WriteString(src)
		sb.WriteString("\n\n")
	}
	return sb.String()
}

// WorldStats summarizes the generated world's ground truth.
type WorldStats struct {
	Repos          int
	LicensedRepos  int
	VerilogFiles   int
	LicensedVFiles int
	JunkFiles      int
	ProtectedFiles int
	BrokenFiles    int
	TotalBytes     int64
}

// Stats computes ground-truth statistics.
func (w *World) Stats() WorldStats {
	var s WorldStats
	s.Repos = len(w.Repos)
	for _, r := range w.Repos {
		licensed := license.Accepted(r.License)
		if licensed {
			s.LicensedRepos++
		}
		for _, f := range r.Files {
			s.TotalBytes += int64(len(f.Content))
			if !f.IsVerilog {
				s.JunkFiles++
				continue
			}
			s.VerilogFiles++
			if licensed {
				s.LicensedVFiles++
			}
			if f.Protected {
				s.ProtectedFiles++
			}
			if f.Broken {
				s.BrokenFiles++
			}
		}
	}
	return s
}
