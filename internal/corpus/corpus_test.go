package corpus

import (
	"math/rand"
	"strings"
	"testing"

	"freehw/internal/dedup"
	"freehw/internal/license"
	"freehw/internal/similarity"
	"freehw/internal/vlog"
)

// Every family generator must produce parseable Verilog, canonical or not.
func TestGeneratedModulesParse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, fam := range Families {
		for trial := 0; trial < 20; trial++ {
			m := Generate(rng, fam, trial%2 == 0)
			if m.Family != fam {
				t.Fatalf("family mismatch: %s vs %s", m.Family, fam)
			}
			if err := vlog.Check(m.Source); err != nil {
				t.Fatalf("%s (trial %d) does not parse: %v\n%s", fam, trial, err, m.Source)
			}
		}
	}
}

func TestCorruptSyntaxBreaksParsing(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	broken := 0
	for i := 0; i < 40; i++ {
		m := Generate(rng, "", false)
		if vlog.Check(CorruptSyntax(rng, m.Source)) != nil {
			broken++
		}
	}
	if broken < 35 {
		t.Fatalf("corruption should almost always break parsing: %d/40", broken)
	}
}

func TestProtectedCorpusProperties(t *testing.T) {
	files := BuildProtectedCorpus(5, 100)
	if len(files) != 100 {
		t.Fatalf("got %d files", len(files))
	}
	seen := map[string]bool{}
	anyKey := false
	for _, f := range files {
		if seen[f.Body] {
			t.Fatal("protected bodies must be distinct")
		}
		seen[f.Body] = true
		if err := vlog.Check(f.Source); err != nil {
			t.Fatalf("protected file %s does not parse: %v", f.Name, err)
		}
		hdr := vlog.HeaderComment(f.Source)
		if r := license.ScanHeader(hdr); !r.Protected {
			t.Fatalf("protected header not detected: %q", hdr)
		}
		if f.HasEmbeddedKey {
			anyKey = true
			if hits := license.ScanBody(f.Body); len(hits) == 0 {
				t.Fatalf("embedded key not detectable in %s", f.Name)
			}
		}
	}
	if !anyKey {
		t.Fatal("some protected files should embed key material")
	}
}

// Protected files should be mutually distinctive (no template collapse),
// and — the benchmark's false-positive guard — ordinary open-source modules
// must never score at or above the violation threshold against them.
func TestProtectedCorpusDistinctive(t *testing.T) {
	files := BuildProtectedCorpus(6, 40)
	vecs := make([]similarity.Vector, len(files))
	names := make([]string, len(files))
	texts := make([]string, len(files))
	for i, f := range files {
		vecs[i] = similarity.NewVector(vlog.StripComments(f.Body))
		names[i] = f.Name
		texts[i] = vlog.StripComments(f.Body)
	}
	// Same-family files share structural tokens (wire [31:0] chains etc.),
	// which cosine-TF counts; what must never happen is two files being
	// near-verbatim copies of each other.
	for i := 0; i < len(vecs); i++ {
		for j := i + 1; j < len(vecs); j++ {
			if s := similarity.Cosine(vecs[i], vecs[j]); s >= 0.95 {
				t.Fatalf("protected files %d and %d nearly identical: %.3f", i, j, s)
			}
		}
	}
	corpus := similarity.NewCorpus(names, texts)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 60; i++ {
		m := Generate(rng, "", i%3 == 0)
		if best := corpus.Best(m.Source); best.Score >= similarity.DefaultThreshold {
			t.Fatalf("ordinary %s module scores %.3f vs protected %s (false positive)",
				m.Family, best.Score, best.Name)
		}
	}
}

func TestWorldProportions(t *testing.T) {
	cfg := DefaultConfig(0.2) // 2,600 Verilog files: fast but statistically stable
	cfg.ProtectedPoolSize = 200
	w := BuildWorld(cfg)
	s := w.Stats()

	if s.VerilogFiles < 2500 {
		t.Fatalf("too few Verilog files: %d", s.VerilogFiles)
	}
	lf := float64(s.LicensedVFiles) / float64(s.VerilogFiles)
	if lf < 0.35 || lf > 0.60 {
		t.Fatalf("licensed file share %.3f out of range (target ~0.468)", lf)
	}
	pf := float64(s.ProtectedFiles) / float64(s.VerilogFiles)
	if pf < 0.004 || pf > 0.02 {
		t.Fatalf("protected share %.4f out of range (target ~0.01)", pf)
	}
	if s.JunkFiles == 0 {
		t.Fatal("world must contain non-Verilog junk")
	}
	if s.BrokenFiles == 0 {
		t.Fatal("world must contain syntax-broken files")
	}
}

func TestWorldDeterminism(t *testing.T) {
	a := BuildWorld(DefaultConfig(0.02))
	b := BuildWorld(DefaultConfig(0.02))
	if len(a.Repos) != len(b.Repos) {
		t.Fatal("repo counts differ")
	}
	for i := range a.Repos {
		if a.Repos[i].FullName() != b.Repos[i].FullName() || len(a.Repos[i].Files) != len(b.Repos[i].Files) {
			t.Fatalf("repo %d differs", i)
		}
		for j := range a.Repos[i].Files {
			if a.Repos[i].Files[j].Content != b.Repos[i].Files[j].Content {
				t.Fatalf("file %d/%d differs", i, j)
			}
		}
	}
}

// The duplicate structure must put dedup removal in the neighborhood of the
// paper's 62.5% (on the licensed subset).
func TestWorldDuplicationLevel(t *testing.T) {
	cfg := DefaultConfig(0.2)
	cfg.ProtectedPoolSize = 100
	w := BuildWorld(cfg)
	idx := dedup.NewIndex(dedup.Options{Seed: 1})
	total := 0
	for _, r := range w.Repos {
		if !license.Accepted(r.License) {
			continue
		}
		for _, f := range r.Files {
			if !f.IsVerilog {
				continue
			}
			total++
			idx.Add(f.Path, f.Content)
		}
	}
	removed := 1 - float64(idx.Len())/float64(total)
	if removed < 0.45 || removed > 0.75 {
		t.Fatalf("dedup removal %.3f out of range (target ~0.625)", removed)
	}
	t.Logf("dedup removal: %.3f (paper: 0.625)", removed)
}

func TestWorldMegaFile(t *testing.T) {
	cfg := DefaultConfig(0.3)
	cfg.ProtectedPoolSize = 50
	w := BuildWorld(cfg)
	maxLen := 0
	for _, r := range w.Repos {
		for _, f := range r.Files {
			if len(f.Content) > maxLen {
				maxLen = len(f.Content)
			}
		}
	}
	if maxLen < 200000 {
		t.Fatalf("expected an extreme-outlier file, max len %d", maxLen)
	}
}

func TestGeneralText(t *testing.T) {
	docs := GeneralText(3, 20)
	if len(docs) != 20 {
		t.Fatalf("got %d docs", len(docs))
	}
	joined := strings.Join(docs, " ")
	if strings.Contains(joined, "posedge") || strings.Contains(joined, "endmodule") {
		t.Fatal("general text must not contain Verilog")
	}
}

func TestLicenseHeadersSurviveScan(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, l := range license.AllAccepted() {
		for i := 0; i < 10; i++ {
			h := licenseHeader(rng, l)
			if r := license.ScanHeader(h); r.Protected {
				t.Fatalf("open-source header flagged protected (%s): %q (%v)", l, h, r.Reasons)
			}
		}
	}
}

func TestLicenseTextsClassify(t *testing.T) {
	for _, l := range license.AllAccepted() {
		if got := license.Classify(licenseText(l)); got != l {
			t.Errorf("licenseText(%s) classifies as %s", l, got)
		}
	}
}

// Trap variants must stay parseable and, for the assign-based families the
// rewrite table targets, actually change the behavior-relevant text. (A few
// tail families have no rewrite and pass through unchanged — acceptable, as
// the variant fraction is a statistical knob, not an invariant.)
func TestCanonVariantParses(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	changed := 0
	for i := 0; i < 100; i++ {
		fam := Families[i%len(Families)]
		m := Generate(rng, fam, true)
		v := CanonVariant(rng, m.Source)
		if err := vlog.Check(v); err != nil {
			t.Fatalf("variant of %s does not parse: %v\n%s", fam, err, v)
		}
		if v != m.Source {
			changed++
		}
	}
	if changed < 65 {
		t.Fatalf("variants rarely change the source: %d/100", changed)
	}
}

// Canonical module generation must be deterministic per (family, width).
func TestGenerateCanonicalDeterminism(t *testing.T) {
	for _, fam := range Families {
		a := GenerateCanonical(fam, 8)
		b := GenerateCanonical(fam, 8)
		if a.Source != b.Source {
			t.Fatalf("%s canonical generation is not deterministic", fam)
		}
	}
}

// Non-canonical instances must usually differ from the canonical interface
// (the port-name synonym mechanism behind Table II's calibration).
func TestNonCanonicalPortVariation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	same := 0
	const trials = 60
	canon := GenerateCanonical("adder", 8)
	for i := 0; i < 60; i++ {
		m := genAdder(rng, false)
		if strings.Contains(m.Source, "output [8:0] sum") &&
			strings.Contains(m.Source, "input  [7:0] a") {
			same++
		}
	}
	_ = canon
	if same > trials/2 {
		t.Fatalf("non-canonical adders too often canonical: %d/%d", same, trials)
	}
}

// Every generated module must also round-trip through the printer.
func TestGeneratedModulesPrintRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for i := 0; i < 40; i++ {
		m := Generate(rng, "", i%2 == 0)
		f, err := vlog.ParseFile(m.Source)
		if err != nil {
			t.Fatal(err)
		}
		printed := vlog.Print(f)
		if err := vlog.Check(printed); err != nil {
			t.Fatalf("printed %s does not parse: %v\n%s", m.Family, err, printed)
		}
	}
}
