package training

import (
	"strings"
	"testing"

	"freehw/internal/lm"
)

var verilogDocs = []string{
	"module a1(input clk, output reg q); always @(posedge clk) q <= ~q; endmodule",
	"module a2(input [3:0] x, output [3:0] y); assign y = ~x; endmodule",
	"module a3(input [7:0] a, b, output [8:0] s); assign s = a + b; endmodule",
	"module a4(input d, clk, output reg q); always @(posedge clk) q <= d; endmodule",
}

func TestSampleBudgets(t *testing.T) {
	docs := make([]string, 100)
	for i := range docs {
		docs[i] = strings.Repeat("x", 1000)
	}
	out := Sample(docs, 500, 5000)
	total := 0
	for _, d := range out {
		if len(d) > 500 {
			t.Fatalf("doc exceeds MaxDocBytes: %d", len(d))
		}
		total += len(d)
	}
	if total > 5500 {
		t.Fatalf("sample exceeds corpus budget: %d", total)
	}
	if len(out) < 5 {
		t.Fatalf("sample too small: %d docs", len(out))
	}
}

func TestSampleStridesAcrossDataset(t *testing.T) {
	docs := make([]string, 50)
	for i := range docs {
		docs[i] = strings.Repeat(string(rune('a'+i%26)), 100)
	}
	out := Sample(docs, 200, 1000)
	// Stride sampling must not just take the head.
	if out[len(out)-1] == docs[len(out)-1] && len(out) < len(docs) {
		last := out[len(out)-1]
		if last == docs[len(out)-1] {
			t.Log("checking spread")
		}
	}
	if len(out) >= 2 && out[1] == docs[1] && len(out)*2 < len(docs) {
		t.Fatalf("sample did not stride: got consecutive head docs")
	}
}

func TestSampleEmpty(t *testing.T) {
	if out := Sample(nil, 100, 100); out != nil {
		t.Fatalf("empty input should produce nil, got %d", len(out))
	}
}

func TestTrainBaseAndContinual(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TokenizerVocab = 400
	tok := TrainTokenizer([][]string{verilogDocs}, cfg)
	general := []string{"the quick brown fox jumps over the lazy dog again and again"}

	base, baseRep := TrainBase("base", tok, general, verilogDocs[:2], cfg)
	if baseRep.Docs == 0 || base.TrainTokens() == 0 {
		t.Fatalf("base training empty: %+v", baseRep)
	}
	tuned, tunedRep := ContinualPretrain(base, "tuned", verilogDocs, cfg)
	if tuned.Contexts() <= base.Contexts() {
		t.Fatal("continual pre-training should add contexts")
	}
	if tunedRep.Model != "tuned" {
		t.Fatalf("report model name: %s", tunedRep.Model)
	}
	// Base model must be untouched by the clone-based tuning.
	if base.Name != "base" {
		t.Fatal("base renamed")
	}
	ce := HeldOutCE(tuned, verilogDocs[3:])
	if ce <= 0 {
		t.Fatalf("held-out CE should be positive: %f", ce)
	}
	if ceBase := HeldOutCE(base, verilogDocs[3:]); ce >= ceBase {
		t.Fatalf("tuning should reduce CE: base %.2f tuned %.2f", ceBase, ce)
	}
}

func TestQuantizedTraining(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TokenizerVocab = 300
	cfg.QuantBits = 4
	tok := TrainTokenizer([][]string{verilogDocs}, cfg)
	m, rep := TrainBase("q4", tok, nil, verilogDocs, cfg)
	if rep.QuantBits != 4 || m.Config().QuantBits != 4 {
		t.Fatalf("quantization not applied: %+v", rep)
	}
}

func TestEpochWeighting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TokenizerVocab = 300
	tok := TrainTokenizer([][]string{verilogDocs}, cfg)
	base := lm.NewModel("b", tok, cfg.LM)

	cfg1 := cfg
	cfg1.Epochs = 1
	one, _ := ContinualPretrain(base, "e1", verilogDocs, cfg1)
	cfg3 := cfg
	cfg3.Epochs = 3
	three, _ := ContinualPretrain(base, "e3", verilogDocs, cfg3)
	if one.Contexts() != three.Contexts() {
		t.Fatal("epochs change weights, not contexts")
	}
}
