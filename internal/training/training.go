// Package training orchestrates tokenizer training, base-model
// pre-training, and continual pre-training (§III-E of the paper), with the
// resource caps that keep this CPU reproduction tractable (the analogue of
// the paper's single-A100 budget, QLoRA, and max-sequence-length limits).
package training

import (
	"fmt"

	"freehw/internal/lm"
	"freehw/internal/tokenizer"
)

// Config bounds one training run.
type Config struct {
	// TokenizerVocab is the BPE vocabulary size.
	TokenizerVocab int
	// LM is the model configuration (order, temperature, stop).
	LM lm.Config
	// Epochs is the number of passes over the dataset (paper: 1 epoch for
	// continual pre-training); implemented as count weight.
	Epochs int
	// MaxDocBytes truncates individual documents, mirroring the paper's
	// 2048-token max sequence length.
	MaxDocBytes int
	// MaxCorpusBytes caps the total training sample; documents are taken
	// in deterministic stride order until the budget is spent.
	MaxCorpusBytes int
	// QuantBits, when nonzero, quantizes the final model (paper: 4-bit).
	QuantBits int
}

// DefaultConfig mirrors the paper's setup at reproduction scale.
func DefaultConfig() Config {
	return Config{
		TokenizerVocab: 1024,
		LM:             lm.DefaultConfig(),
		Epochs:         1,
		MaxDocBytes:    8 << 10,
		MaxCorpusBytes: 400 << 10,
		QuantBits:      0,
	}
}

// Sample selects documents under the byte budgets with a stride so the
// sample spans the whole dataset rather than its head.
func Sample(docs []string, maxDocBytes, maxCorpusBytes int) []string {
	if maxDocBytes <= 0 {
		maxDocBytes = 8 << 10
	}
	if maxCorpusBytes <= 0 {
		maxCorpusBytes = 400 << 10
	}
	if len(docs) == 0 {
		return nil
	}
	// Estimate how many docs fit, then stride.
	var avg int
	for _, d := range docs {
		n := len(d)
		if n > maxDocBytes {
			n = maxDocBytes
		}
		avg += n
	}
	avg /= len(docs)
	if avg == 0 {
		avg = 1
	}
	fit := maxCorpusBytes / avg
	if fit < 1 {
		fit = 1
	}
	stride := len(docs) / fit
	if stride < 1 {
		stride = 1
	}
	var out []string
	budget := maxCorpusBytes
	for i := 0; i < len(docs) && budget > 0; i += stride {
		d := docs[i]
		if len(d) > maxDocBytes {
			d = d[:maxDocBytes]
		}
		out = append(out, d)
		budget -= len(d)
	}
	return out
}

// Report summarizes a training run.
type Report struct {
	Model       string
	Docs        int
	TrainTokens uint64
	Contexts    int
	HeldOutCE   float64 // cross-entropy (bits/token) on held-out text
	QuantBits   int
}

func (r Report) String() string {
	return fmt.Sprintf("%s: %d docs, %d tokens, %d contexts, held-out CE %.2f bits/token",
		r.Model, r.Docs, r.TrainTokens, r.Contexts, r.HeldOutCE)
}

// TrainTokenizer learns a BPE vocabulary over a mixed corpus.
func TrainTokenizer(corpora [][]string, cfg Config) *tokenizer.Tokenizer {
	var mixed []string
	for _, c := range corpora {
		mixed = append(mixed, c...)
	}
	vocab := cfg.TokenizerVocab
	if vocab <= 0 {
		vocab = 1024
	}
	return tokenizer.Train(mixed, tokenizer.TrainConfig{VocabSize: vocab, MaxBytes: 1 << 20})
}

// TrainBase pre-trains a base model on general text plus an (uncurated) web
// slice of Verilog — the pre-training exposure that gives foundation models
// both their limited Verilog skill and their baseline violation rates.
func TrainBase(name string, tok *tokenizer.Tokenizer, general, webSlice []string, cfg Config) (*lm.Model, Report) {
	m := lm.NewModel(name, tok, cfg.LM)
	docs := append(Sample(general, cfg.MaxDocBytes, cfg.MaxCorpusBytes),
		Sample(webSlice, cfg.MaxDocBytes, cfg.MaxCorpusBytes)...)
	m.Train(docs)
	out := m
	if cfg.QuantBits > 0 {
		out = m.Quantize(name, cfg.QuantBits)
	}
	rep := Report{Model: name, Docs: len(docs), TrainTokens: out.TrainTokens(), Contexts: out.Contexts(), QuantBits: cfg.QuantBits}
	return out, rep
}

// ContinualPretrain clones base and continues training on the dataset —
// the paper's fine-tuning procedure (SFTTrainer, 1 epoch, full dataset).
func ContinualPretrain(base *lm.Model, name string, dataset []string, cfg Config) (*lm.Model, Report) {
	epochs := cfg.Epochs
	if epochs <= 0 {
		epochs = 1
	}
	tuned := base.Clone(name)
	docs := Sample(dataset, cfg.MaxDocBytes, cfg.MaxCorpusBytes)
	tuned.TrainWeighted(docs, uint32(epochs))
	out := tuned
	if cfg.QuantBits > 0 {
		out = tuned.Quantize(name, cfg.QuantBits)
	}
	rep := Report{Model: name, Docs: len(docs), TrainTokens: out.TrainTokens(), Contexts: out.Contexts(), QuantBits: cfg.QuantBits}
	return out, rep
}

// HeldOutCE fills in the report's held-out cross-entropy.
func HeldOutCE(m *lm.Model, heldOut []string) float64 {
	if len(heldOut) == 0 {
		return 0
	}
	var sum float64
	for _, d := range heldOut {
		if len(d) > 4096 {
			d = d[:4096]
		}
		sum += m.CrossEntropy(d)
	}
	return sum / float64(len(heldOut))
}
