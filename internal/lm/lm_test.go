package lm

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"freehw/internal/tokenizer"
)

var trainDocs = []string{
	`module counter(input clk, input rst, output reg [7:0] q);
  always @(posedge clk) begin
    if (rst) q <= 8'd0;
    else q <= q + 1;
  end
endmodule`,
	`module mux2(input a, b, sel, output y);
  assign y = sel ? b : a;
endmodule`,
	`module adder(input [7:0] a, b, output [8:0] sum);
  assign sum = a + b;
endmodule`,
	`module shifter(input clk, input d, output reg [7:0] q);
  always @(posedge clk) q <= {q[6:0], d};
endmodule`,
}

func trainedModel(t testing.TB, temp float64) *Model {
	t.Helper()
	tok := tokenizer.Train(trainDocs, tokenizer.TrainConfig{VocabSize: 512})
	cfg := DefaultConfig()
	cfg.Temperature = temp
	m := NewModel("test", tok, cfg)
	m.Train(trainDocs)
	return m
}

func TestMemorizationOfTrainingText(t *testing.T) {
	// The core mechanism of the paper's copyright experiment: a low-
	// temperature model regurgitates training text from a prefix.
	m := trainedModel(t, 0.001)
	prompt := "module counter(input clk, input rst,"
	out := m.Generate(prompt, 400)
	full := prompt + out
	if !strings.Contains(full, "q <= q + 1") {
		t.Fatalf("model failed to memorize training continuation:\n%s", full)
	}
	if !strings.HasSuffix(out, "endmodule") {
		t.Fatalf("generation must stop at endmodule:\n%q", out)
	}
}

func TestNoMemorizationOfUnseenText(t *testing.T) {
	m := trainedModel(t, 0.001)
	out := m.Generate("module fifo_ctrl(input wr_en, rd_en,", 200)
	if strings.Contains(out, "secret") {
		t.Fatal("impossible")
	}
	// The continuation cannot contain tokens for code never seen; it may be
	// empty or generic, but must not panic and must terminate.
	if len(out) > 4096 {
		t.Fatal("unbounded generation")
	}
}

func TestSampleSeedsDiffer(t *testing.T) {
	m := trainedModel(t, 0.9)
	prompt := "module "
	seen := map[string]bool{}
	for i := int64(0); i < 10; i++ {
		seen[m.Sample(prompt, 60, i)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("high-temperature samples should vary, got %d distinct", len(seen))
	}
	// Same seed must reproduce exactly.
	if m.Sample(prompt, 60, 3) != m.Sample(prompt, 60, 3) {
		t.Fatal("sampling is not deterministic per seed")
	}
}

func TestContinualPretraining(t *testing.T) {
	tok := tokenizer.Train(trainDocs, tokenizer.TrainConfig{VocabSize: 512})
	base := NewModel("base", tok, DefaultConfig())
	base.Train([]string{"the quick brown fox jumps over the lazy dog. " +
		"it was the best of times, it was the worst of times."})
	tuned := base.Clone("tuned")
	tuned.TrainWeighted(trainDocs, 3)

	if base.Contexts() >= tuned.Contexts() {
		t.Fatal("continual pre-training should add contexts")
	}
	// The tuned model completes Verilog; the base cannot.
	prompt := "module counter(input clk, input rst,"
	baseOut := base.Generate(prompt, 200)
	tunedOut := tuned.Generate(prompt, 200)
	if strings.Contains(baseOut, "posedge") {
		t.Fatalf("base model should not know Verilog: %q", baseOut)
	}
	if !strings.Contains(tunedOut, "posedge") {
		t.Fatalf("tuned model should complete Verilog: %q", tunedOut)
	}
	// Cross-entropy on domain text must improve.
	ceBase := base.CrossEntropy(trainDocs[0])
	ceTuned := tuned.CrossEntropy(trainDocs[0])
	if ceTuned >= ceBase {
		t.Fatalf("cross-entropy should drop: base=%.2f tuned=%.2f", ceBase, ceTuned)
	}
}

func TestQuantization(t *testing.T) {
	m := trainedModel(t, 0.001)
	q := m.Quantize("test-4bit", 4)
	if q.Config().QuantBits != 4 {
		t.Fatal("quant bits not recorded")
	}
	if q.Contexts() != m.Contexts() {
		t.Fatal("quantization must preserve contexts")
	}
	// Quantized model still memorizes strongly-supported continuations.
	out := q.Generate("module counter(input clk, input rst,", 400)
	if !strings.Contains(out, "posedge") {
		t.Fatalf("quantized model lost domain knowledge: %q", out)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := trainedModel(t, 0.001)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Name != m.Name || m2.Contexts() != m.Contexts() || m2.TrainTokens() != m.TrainTokens() {
		t.Fatalf("metadata mismatch: %s %d %d", m2.Name, m2.Contexts(), m2.TrainTokens())
	}
	prompt := "module counter(input clk, input rst,"
	if m.Generate(prompt, 300) != m2.Generate(prompt, 300) {
		t.Fatal("loaded model generates differently")
	}
}

// Save must emit byte-identical output for the same model: artifacts are
// checksummed and diffed, and the tables are maps, so serialization walks
// them in sorted key order rather than leaking iteration order into the
// gob stream.
func TestSaveBytesDeterministic(t *testing.T) {
	m := trainedModel(t, 0.001)
	var first bytes.Buffer
	if err := m.Save(&first); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		var again bytes.Buffer
		if err := m.Save(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), again.Bytes()) {
			t.Fatalf("save %d produced different bytes (%d vs %d): map order leaked into the gob stream", i, first.Len(), again.Len())
		}
	}
}

func TestStopSequence(t *testing.T) {
	m := trainedModel(t, 0.001)
	out := m.Generate("module mux2(input a, b, sel,", 400)
	if !strings.HasSuffix(out, "endmodule") {
		t.Fatalf("should stop at endmodule: %q", out)
	}
	if strings.Count(out, "endmodule") != 1 {
		t.Fatalf("should stop at FIRST endmodule: %q", out)
	}
}

func TestTopK(t *testing.T) {
	tok := tokenizer.Train(trainDocs, tokenizer.TrainConfig{VocabSize: 512})
	cfg := DefaultConfig()
	cfg.TopK = 1
	cfg.Temperature = 2.0 // high temp, but TopK=1 forces determinism
	m := NewModel("topk", tok, cfg)
	m.Train(trainDocs)
	p := "module counter(input clk, input rst,"
	if m.Sample(p, 50, 1) != m.Sample(p, 50, 2) {
		t.Fatal("TopK=1 must be deterministic across seeds")
	}
}

func TestCrossEntropyOrdering(t *testing.T) {
	m := trainedModel(t, 0.2)
	inDomain := m.CrossEntropy(trainDocs[1])
	outDomain := m.CrossEntropy("völlig anderes deutsches Zeug ohne Verilog überhaupt 12345")
	if inDomain >= outDomain {
		t.Fatalf("in-domain CE %.2f should beat out-of-domain %.2f", inDomain, outDomain)
	}
}

func TestEmptyModelGenerates(t *testing.T) {
	tok := tokenizer.Train(trainDocs, tokenizer.TrainConfig{VocabSize: 300})
	m := NewModel("empty", tok, DefaultConfig())
	if out := m.Generate("module", 50); out != "" {
		t.Fatalf("untrained model should generate nothing, got %q", out)
	}
}

func TestTrainWeightedEquivalence(t *testing.T) {
	tok := tokenizer.Train(trainDocs, tokenizer.TrainConfig{VocabSize: 512})
	a := NewModel("a", tok, DefaultConfig())
	a.TrainWeighted(trainDocs, 2)
	b := NewModel("b", tok, DefaultConfig())
	b.Train(trainDocs)
	b.Train(trainDocs)
	if a.Contexts() != b.Contexts() {
		t.Fatalf("weight-2 should equal two epochs: %d vs %d", a.Contexts(), b.Contexts())
	}
	p := "module adder(input [7:0]"
	if a.Generate(p, 100) != b.Generate(p, 100) {
		t.Fatal("weighted training should equal repeated epochs")
	}
}

func BenchmarkTrain(b *testing.B) {
	tok := tokenizer.Train(trainDocs, tokenizer.TrainConfig{VocabSize: 512})
	docs := make([]string, 0, 64)
	for i := 0; i < 64; i++ {
		docs = append(docs, strings.Replace(trainDocs[i%len(trainDocs)], "module ", fmt.Sprintf("module v%d_", i), 1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewModel("bench", tok, DefaultConfig())
		m.Train(docs)
	}
}

func BenchmarkGenerate(b *testing.B) {
	tok := tokenizer.Train(trainDocs, tokenizer.TrainConfig{VocabSize: 512})
	m := NewModel("bench", tok, DefaultConfig())
	m.Train(trainDocs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Sample("module counter(input clk,", 200, int64(i))
	}
}
