// Package lm implements the language-model substrate of this reproduction:
// a back-off n-gram model over BPE tokens with temperature sampling, a stop
// sequence, continual pre-training (weighted count merging), and 4-bit
// count quantization standing in for the paper's QLoRA setup.
//
// Why an n-gram model reproduces the paper's mechanism: the copyright
// experiment (§III-A) works by prompting a model with the first 20% of a
// protected file and checking whether the continuation reproduces the file.
// That behavior is verbatim memorization of training text, which a
// high-order n-gram model exhibits exactly — a model whose training data
// contains the file will regurgitate it from a matching prefix; a model
// trained on the cleaned FreeSet cannot. Functional gains work the same
// way: more in-domain Verilog in training makes module-shaped continuations
// more likely, raising VerilogEval-style pass rates.
package lm

import (
	"math"
	"math/rand"
	"sort"
	"strings"

	"freehw/internal/tokenizer"
)

// Config parameterizes a model.
type Config struct {
	Order       int     // n-gram order (context length = Order-1); default 10
	Temperature float64 // sampling temperature; default 0.2
	TopK        int     // restrict sampling to the K most likely tokens; 0 = all
	Stop        string  // stop sequence; default "endmodule"
	Seed        int64   // base RNG seed
	QuantBits   int     // count quantization (0 = full precision)
	// MinBackoff stops generation when no context of at least this length
	// is known. It models the prompt-anchoring of real LLMs: a model that
	// has never seen anything like the prompt emits nothing rather than
	// drifting into verbatim replay of unrelated training text.
	MinBackoff int
}

// DefaultConfig mirrors the paper's inference settings (temperature 0.2,
// stop at the first "endmodule").
func DefaultConfig() Config {
	return Config{Order: 16, Temperature: 0.2, Stop: "endmodule", Seed: 1, MinBackoff: 3}
}

// node holds the next-token counts for one context.
type node struct {
	total uint64
	toks  []int32
	cnts  []uint32
}

func (n *node) add(tok int32, delta uint32) {
	i := sort.Search(len(n.toks), func(i int) bool { return n.toks[i] >= tok })
	if i < len(n.toks) && n.toks[i] == tok {
		n.cnts[i] += delta
	} else {
		n.toks = append(n.toks, 0)
		copy(n.toks[i+1:], n.toks[i:])
		n.toks[i] = tok
		n.cnts = append(n.cnts, 0)
		copy(n.cnts[i+1:], n.cnts[i:])
		n.cnts[i] = delta
	}
	n.total += uint64(delta)
}

// Model is a trained n-gram LM.
type Model struct {
	Name string
	cfg  Config
	tok  *tokenizer.Tokenizer
	// tables[L] maps a hash of an L-token context to its counts.
	tables []map[uint64]*node
	tokens uint64 // total training tokens observed
}

// NewModel creates an empty model over a tokenizer.
func NewModel(name string, tok *tokenizer.Tokenizer, cfg Config) *Model {
	if cfg.Order <= 1 {
		cfg.Order = 10
	}
	if cfg.Temperature == 0 {
		cfg.Temperature = 0.2
	}
	if cfg.Stop == "" {
		cfg.Stop = "endmodule"
	}
	m := &Model{Name: name, cfg: cfg, tok: tok, tables: make([]map[uint64]*node, cfg.Order)}
	for i := range m.tables {
		m.tables[i] = map[uint64]*node{}
	}
	return m
}

// Config returns the model configuration.
func (m *Model) Config() Config { return m.cfg }

// SetTemperature adjusts the sampling temperature (the paper evaluates at
// 0.2 and 0.8 and keeps the better result).
func (m *Model) SetTemperature(t float64) { m.cfg.Temperature = t }

// Tokenizer returns the model's tokenizer.
func (m *Model) Tokenizer() *tokenizer.Tokenizer { return m.tok }

// TrainTokens returns the number of tokens seen during training.
func (m *Model) TrainTokens() uint64 { return m.tokens }

// Contexts returns the number of stored contexts (model "size").
func (m *Model) Contexts() int {
	n := 0
	for _, t := range m.tables {
		n += len(t)
	}
	return n
}

func ctxHash(ids []int32) uint64 {
	h := uint64(14695981039346656037)
	for _, id := range ids {
		for s := 0; s < 32; s += 8 {
			h ^= uint64(byte(id >> s))
			h *= 1099511628211
		}
	}
	return h
}

// Train adds documents with weight 1.
func (m *Model) Train(corpus []string) {
	m.TrainWeighted(corpus, 1)
}

// Normalize collapses all whitespace runs to single spaces. The model
// normalizes both training text and prompts so that a prompt cut from a
// training file tokenizes identically to the file itself — the alignment
// verbatim memorization depends on.
func Normalize(text string) string {
	return strings.Join(strings.Fields(text), " ")
}

// TrainWeighted adds documents, multiplying every count by weight. Continual
// pre-training is implemented as TrainWeighted on a clone of the base model:
// base counts stay, domain counts are merged in (§III-E).
func (m *Model) TrainWeighted(corpus []string, weight uint32) {
	if weight == 0 {
		weight = 1
	}
	for _, docText := range corpus {
		ids := m.tok.Encode(Normalize(docText))
		for i := 0; i < len(ids); i++ {
			maxL := m.cfg.Order - 1
			if i < maxL {
				maxL = i
			}
			for L := 0; L <= maxL; L++ {
				key := ctxHash(ids[i-L : i])
				nd := m.tables[L][key]
				if nd == nil {
					nd = &node{}
					m.tables[L][key] = nd
				}
				nd.add(ids[i], weight)
			}
		}
		m.tokens += uint64(len(ids))
	}
}

// Clone deep-copies the model (used before continual pre-training so the
// base model survives for the paper's base-vs-tuned comparisons).
func (m *Model) Clone(name string) *Model {
	c := NewModel(name, m.tok, m.cfg)
	c.tokens = m.tokens
	for L, t := range m.tables {
		for k, nd := range t {
			cp := &node{
				total: nd.total,
				toks:  append([]int32(nil), nd.toks...),
				cnts:  append([]uint32(nil), nd.cnts...),
			}
			c.tables[L][k] = cp
		}
	}
	return c
}

// Quantize returns a copy whose counts are quantized to bits bits per entry
// (scaled to the node maximum), the reproduction's stand-in for 4-bit QLoRA
// weight quantization. bits must be in [2,8].
func (m *Model) Quantize(name string, bits int) *Model {
	if bits < 2 {
		bits = 2
	}
	if bits > 8 {
		bits = 8
	}
	levels := uint32(1<<bits) - 1
	q := NewModel(name, m.tok, m.cfg)
	q.cfg.QuantBits = bits
	q.tokens = m.tokens
	for L, t := range m.tables {
		for k, nd := range t {
			var maxC uint32
			for _, c := range nd.cnts {
				if c > maxC {
					maxC = c
				}
			}
			cp := &node{toks: append([]int32(nil), nd.toks...), cnts: make([]uint32, len(nd.cnts))}
			for i, c := range nd.cnts {
				scaled := uint32(math.Round(float64(c) / float64(maxC) * float64(levels)))
				if scaled == 0 {
					scaled = 1
				}
				cp.cnts[i] = scaled
				cp.total += uint64(scaled)
			}
			q.tables[L][k] = cp
		}
	}
	return q
}

// lookup finds the counts node for the longest available context suffix,
// refusing to back off below MinBackoff (see Config).
func (m *Model) lookup(ids []int32) *node {
	maxL := m.cfg.Order - 1
	if len(ids) < maxL {
		maxL = len(ids)
	}
	minL := m.cfg.MinBackoff
	if minL > maxL {
		minL = maxL
	}
	for L := maxL; L >= minL; L-- {
		key := ctxHash(ids[len(ids)-L:])
		if nd, ok := m.tables[L][key]; ok && nd.total > 0 {
			return nd
		}
	}
	return nil
}

// sampleFrom draws a token from nd under the model temperature and TopK.
func (m *Model) sampleFrom(nd *node, rng *rand.Rand) int32 {
	if len(nd.toks) == 0 {
		return -1
	}
	temp := m.cfg.Temperature
	if temp <= 0.01 {
		// Greedy: max count, lowest id tiebreak.
		best := 0
		for i := 1; i < len(nd.cnts); i++ {
			if nd.cnts[i] > nd.cnts[best] {
				best = i
			}
		}
		return nd.toks[best]
	}
	type cand struct {
		tok int32
		w   float64
	}
	cands := make([]cand, len(nd.toks))
	for i := range nd.toks {
		cands[i] = cand{tok: nd.toks[i], w: float64(nd.cnts[i])}
	}
	if m.cfg.TopK > 0 && len(cands) > m.cfg.TopK {
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].w != cands[j].w {
				return cands[i].w > cands[j].w
			}
			return cands[i].tok < cands[j].tok
		})
		cands = cands[:m.cfg.TopK]
	}
	// p_i ∝ count_i^(1/T)
	inv := 1 / temp
	var sum float64
	for i := range cands {
		cands[i].w = math.Pow(cands[i].w, inv)
		sum += cands[i].w
	}
	r := rng.Float64() * sum
	for i := range cands {
		r -= cands[i].w
		if r <= 0 {
			return cands[i].tok
		}
	}
	return cands[len(cands)-1].tok
}

// Sample generates a continuation of prompt with an explicit sample seed, so
// pass@k evaluation can draw k distinct, reproducible samples.
func (m *Model) Sample(prompt string, maxTokens int, seed int64) string {
	if maxTokens <= 0 {
		maxTokens = 512
	}
	ids := m.tok.Encode(Normalize(prompt))
	rng := rand.New(rand.NewSource(m.cfg.Seed ^ int64(ctxHash(ids)) ^ (seed * 0x9E3779B9)))
	var out strings.Builder
	stop := m.cfg.Stop
	generated := make([]int32, 0, maxTokens)
	for len(generated) < maxTokens {
		nd := m.lookup(append(ids, generated...))
		if nd == nil {
			break
		}
		tok := m.sampleFrom(nd, rng)
		if tok < 0 {
			break
		}
		generated = append(generated, tok)
		out.WriteString(m.tok.Token(int(tok)))
		if stop != "" {
			if idx := strings.Index(out.String(), stop); idx >= 0 {
				return out.String()[:idx+len(stop)]
			}
		}
	}
	return out.String()
}

// Generate implements similarity.Generator: a single deterministic-per-
// prompt continuation at the model's configured temperature.
func (m *Model) Generate(prompt string, maxTokens int) string {
	return m.Sample(prompt, maxTokens, 0)
}

// CrossEntropy computes the per-token cross-entropy (bits) of text under
// the model with stupid back-off (factor 0.4 per level), a standard cheap
// LM quality metric used in training reports.
func (m *Model) CrossEntropy(text string) float64 {
	ids := m.tok.Encode(Normalize(text))
	if len(ids) == 0 {
		return 0
	}
	const backoff = 0.4
	var bits float64
	vocab := float64(m.tok.VocabSize())
	for i := range ids {
		p := 1.0 / vocab * 1e-3 // floor
		maxL := m.cfg.Order - 1
		if i < maxL {
			maxL = i
		}
		penalty := 1.0
		for L := maxL; L >= 0; L-- {
			nd, ok := m.tables[L][ctxHash(ids[i-L:i])]
			if !ok || nd.total == 0 {
				penalty *= backoff
				continue
			}
			j := sort.Search(len(nd.toks), func(j int) bool { return nd.toks[j] >= ids[i] })
			if j < len(nd.toks) && nd.toks[j] == ids[i] {
				p = penalty * float64(nd.cnts[j]) / float64(nd.total)
				break
			}
			penalty *= backoff
		}
		bits += -math.Log2(p)
	}
	return bits / float64(len(ids))
}
