package lm

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"freehw/internal/tokenizer"
)

// modelDTO is the gob wire form of a Model.
type modelDTO struct {
	Name   string
	Cfg    Config
	Vocab  []string
	Tokens uint64
	Tables []tableDTO
}

type tableDTO struct {
	Keys   []uint64
	Starts []uint32 // entry range per key: [Starts[i], Starts[i+1])
	Totals []uint64
	Toks   []int32
	Cnts   []uint32
}

// Save serializes the model with encoding/gob.
func (m *Model) Save(w io.Writer) error {
	dto := modelDTO{Name: m.Name, Cfg: m.cfg, Vocab: m.tok.Vocab(), Tokens: m.tokens}
	for _, t := range m.tables {
		td := tableDTO{
			Keys:   make([]uint64, 0, len(t)),
			Starts: make([]uint32, 1, len(t)+1),
			Totals: make([]uint64, 0, len(t)),
		}
		// Walk contexts in sorted key order: gob output must be
		// byte-identical for the same model, and map order is not.
		keys := make([]uint64, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			nd := t[k]
			td.Keys = append(td.Keys, k)
			td.Totals = append(td.Totals, nd.total)
			td.Toks = append(td.Toks, nd.toks...)
			td.Cnts = append(td.Cnts, nd.cnts...)
			td.Starts = append(td.Starts, uint32(len(td.Toks)))
		}
		dto.Tables = append(dto.Tables, td)
	}
	return gob.NewEncoder(w).Encode(dto)
}

// Load deserializes a model saved with Save.
func Load(r io.Reader) (*Model, error) {
	var dto modelDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("lm: load: %w", err)
	}
	tok, err := tokenizer.New(dto.Vocab)
	if err != nil {
		return nil, fmt.Errorf("lm: load: %w", err)
	}
	m := NewModel(dto.Name, tok, dto.Cfg)
	m.tokens = dto.Tokens
	if len(dto.Tables) != len(m.tables) {
		return nil, fmt.Errorf("lm: load: table count %d does not match order %d", len(dto.Tables), dto.Cfg.Order)
	}
	for L, td := range dto.Tables {
		for i, k := range td.Keys {
			lo, hi := td.Starts[i], td.Starts[i+1]
			m.tables[L][k] = &node{
				total: td.Totals[i],
				toks:  append([]int32(nil), td.Toks[lo:hi]...),
				cnts:  append([]uint32(nil), td.Cnts[lo:hi]...),
			}
		}
	}
	return m, nil
}
