// Benchmarks regenerating every table and figure of the paper, plus the
// ablations called out in DESIGN.md. Each bench prints the rows it
// reproduces once, then measures the underlying computation so `go test
// -bench` doubles as the experiment harness. Run the flagship scale with
// cmd/repro; these use a reduced world so the full suite stays tractable.
package freehw

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"freehw/internal/core"
	"freehw/internal/curation"
	"freehw/internal/dedup"
	"freehw/internal/similarity"
	"freehw/internal/training"
	"freehw/internal/veval"
	"freehw/internal/vlog"
)

const benchScale = 0.25

var (
	benchOnce sync.Once
	benchExp  *core.Experiment
	benchZoo  *core.Zoo
)

// benchEnv builds the shared experiment environment once.
func benchEnv(b *testing.B) (*core.Experiment, *core.Zoo) {
	b.Helper()
	benchOnce.Do(func() {
		cfg := core.DefaultConfig()
		cfg.Scale = benchScale
		cfg.EvalN = 8
		e, err := core.New(cfg)
		if err != nil {
			panic(err)
		}
		z, err := e.BuildZoo(core.DefaultZoo())
		if err != nil {
			panic(err)
		}
		benchExp, benchZoo = e, z
	})
	return benchExp, benchZoo
}

var printOnce sync.Map

// printResult emits a reproduction artifact exactly once per bench name.
func printResult(name, content string) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Fprintf(os.Stderr, "\n===== %s =====\n%s\n", name, content)
	}
}

// BenchmarkFunnelSectionIVA regenerates the §IV-A dataset funnel
// (1.3M -> 608,180 -> -62.5%% dedup -> 222,624 at paper scale).
func BenchmarkFunnelSectionIVA(b *testing.B) {
	e, _ := benchEnv(b)
	printResult("Funnel (paper IV-A)", e.FreeSet.FunnelReport(benchScale))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := curation.RunFreeSet(e.Repos)
		if res.FinalFiles == 0 {
			b.Fatal("empty funnel result")
		}
	}
}

// BenchmarkTable1DatasetComparison regenerates Table I.
func BenchmarkTable1DatasetComparison(b *testing.B) {
	e, _ := benchEnv(b)
	rows := curation.PriorWorkRows()
	rows = append(rows, curation.PaperFreeSetRow(), e.FreeSet.FreeSetRow("FreeSet (measured)"))
	printResult("Table I", curation.RenderTableI(rows))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := curation.RenderTableI(rows); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure2FileLengths regenerates Figure 2's file-length
// distributions (FreeSet vs the VeriGen-style dataset).
func BenchmarkFigure2FileLengths(b *testing.B) {
	e, _ := benchEnv(b)
	render := func() string {
		return curation.Render(
			[]string{"FreeSet", "VeriGen-like"},
			[]curation.Histogram{
				curation.LengthHistogram(e.FreeSet.Texts()),
				curation.LengthHistogram(e.VeriGenLike.Texts()),
			})
	}
	printResult("Figure 2", render())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		curation.LengthHistogram(e.FreeSet.Texts())
	}
}

// BenchmarkFigure3CopyrightRates regenerates the copyright-infringement
// rates across the model zoo (base vs fine-tuned pairs).
func BenchmarkFigure3CopyrightRates(b *testing.B) {
	e, z := benchEnv(b)
	points := e.RunCopyrightBenchmark(z)
	printResult("Figure 3", core.RenderFigure3(points)+
		"paper: VeriGen 9%->15% over base; CodeV above base; FreeV lowest tuned (3%, +1pt over base)")
	m := z.Models["FreeV-Llama3.1"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := similarity.RunBenchmark(m.Name, m, e.ProtCorpus, e.Prompts[:min(8, len(e.Prompts))], e.Cfg.Bench)
		_ = rep.ViolationRate()
	}
}

// BenchmarkTable2VerilogEval regenerates Table II (measured base vs FreeV
// rows alongside the paper's reported rows).
func BenchmarkTable2VerilogEval(b *testing.B) {
	e, z := benchEnv(b)
	outcomes := []core.EvalOutcome{
		e.RunVerilogEval(z.Models["Llama-3.1-8B-Instruct"]),
		e.RunVerilogEval(z.Models["FreeV-Llama3.1"]),
	}
	printResult("Table II", core.TableII(outcomes))
	problems := veval.BuildSuite()[:8]
	m := z.Models["FreeV-Llama3.1"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := veval.Evaluate(m.Name, m, problems, veval.EvalConfig{N: 2})
		_ = res.PassAtK(1)
	}
}

// BenchmarkAblationFunnelStages measures the effect of removing each
// curation stage on dataset size and leaked protected files (ablation A1).
func BenchmarkAblationFunnelStages(b *testing.B) {
	e, _ := benchEnv(b)
	var report string
	masks := []struct {
		name string
		mask curation.StageMask
	}{
		{"full pipeline", curation.StageMask{}},
		{"no license gate", curation.StageMask{SkipLicense: true}},
		{"no dedup", curation.StageMask{SkipDedup: true}},
		{"no copyright screen", curation.StageMask{SkipCopyright: true}},
		{"no syntax check", curation.StageMask{SkipSyntax: true}},
	}
	for _, m := range masks {
		res := curation.Run(e.Repos, curation.Options{Mask: m.mask, Dedup: dedup.Options{Threshold: 0.85, Seed: 1}})
		report += fmt.Sprintf("%-22s final=%6d bytes=%9d copyrightRemoved=%4d syntaxRemoved=%4d\n",
			m.name, res.FinalFiles, res.Bytes, res.CopyrightRemoved, res.SyntaxRemoved)
	}
	printResult("Ablation A1: funnel stages", report)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		curation.Run(e.Repos, curation.Options{Mask: curation.StageMask{SkipDedup: true}})
	}
}

// BenchmarkAblationQuantization compares the 4-bit quantized model against
// full precision on a slice of VerilogEval (ablation A2, §III-E's 4-bit
// inference caveat).
func BenchmarkAblationQuantization(b *testing.B) {
	_, z := benchEnv(b)
	full := z.Models["FreeV-Llama3.1"]
	quant := full.Quantize("FreeV-4bit", 4)
	problems := veval.BuildSuite()[:40]
	cfg := veval.EvalConfig{N: 4}
	fullRes := veval.Evaluate(full.Name, full, problems, cfg)
	quantRes := veval.Evaluate(quant.Name, quant, problems, cfg)
	printResult("Ablation A2: 4-bit quantization",
		fmt.Sprintf("full precision: pass@1=%.3f pass@4=%.3f\n4-bit counts:   pass@1=%.3f pass@4=%.3f",
			fullRes.PassAtK(1), fullRes.PassAtK(4), quantRes.PassAtK(1), quantRes.PassAtK(4)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := full.Quantize("q", 4)
		_ = q.Contexts()
	}
}

// BenchmarkAblationTrainingSweep sweeps the continual-pre-training budget
// (the paper's future-work axis: more epochs/data) against pass@10 and
// violations (ablation A3).
func BenchmarkAblationTrainingSweep(b *testing.B) {
	e, z := benchEnv(b)
	base := z.Models["Llama-3.1-8B-Instruct"]
	problems := veval.BuildSuite()[:40]
	var report string
	for _, kb := range []int{60, 140, 280} {
		cfg := e.Cfg.Train
		cfg.MaxCorpusBytes = kb << 10
		tuned, _ := training.ContinualPretrain(base, fmt.Sprintf("freev-%dkb", kb), e.FreeSet.Texts(), cfg)
		res := veval.Evaluate(tuned.Name, tuned, problems, veval.EvalConfig{N: 6})
		rep := similarity.RunBenchmark(tuned.Name, tuned, e.ProtCorpus, e.Prompts, e.Cfg.Bench)
		report += fmt.Sprintf("budget %4d KB: pass@1=%.3f pass@6=%.3f violations=%.1f%%\n",
			kb, res.PassAtK(1), res.PassAtK(6), 100*rep.ViolationRate())
	}
	printResult("Ablation A3: training budget sweep", report)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := e.Cfg.Train
		cfg.MaxCorpusBytes = 60 << 10
		tuned, _ := training.ContinualPretrain(base, "sweep", e.FreeSet.Texts(), cfg)
		_ = tuned.Contexts()
	}
}

// BenchmarkLMGeneration measures raw generation throughput (tokens/op are
// bounded by MaxTokens).
func BenchmarkLMGeneration(b *testing.B) {
	_, z := benchEnv(b)
	m := z.Models["FreeV-Llama3.1"]
	prompt := veval.BuildSuite()[0].Prompt()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Sample(prompt, 256, int64(i))
	}
}

// BenchmarkCurationPipeline measures funnel throughput per repository set.
// RunFreeSet reads through the process-wide content-hash verdict cache, so
// this is the repeated-corpus (warm-cache) number: per-file syntax checks,
// copyright scans, and MinHash signing all collapse to hash lookups after
// the first iteration, leaving the license gate, LSH insertion, and result
// aggregation as the measured work.
func BenchmarkCurationPipeline(b *testing.B) {
	e, _ := benchEnv(b)
	curation.RunFreeSet(e.Repos) // warm the verdict cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := curation.RunFreeSet(e.Repos)
		if res.FinalFiles == 0 {
			b.Fatal("no output")
		}
	}
}

// BenchmarkCurationPipelineCold measures the same funnel with the verdict
// cache disabled: every iteration recomputes every per-file analysis, so
// this isolates the per-file compute — the QuickCheck syntax pre-check
// with its parser fallback, the single-pass license scans, the batched
// MinHash kernel, and sharded LSH insertion — from the cache win (compare
// against BenchmarkCurationPipeline).
func BenchmarkCurationPipelineCold(b *testing.B) {
	e, _ := benchEnv(b)
	opt := curation.FreeSetOptions()
	opt.NoCache = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := curation.Run(e.Repos, opt)
		if res.FinalFiles == 0 {
			b.Fatal("no output")
		}
	}
}

// BenchmarkCurationPipelineColdNoQuickCheck is the cold funnel with the
// streaming syntax pre-check disabled (every file pays the full parse) —
// the A/B for QuickCheck's share of the cold path.
func BenchmarkCurationPipelineColdNoQuickCheck(b *testing.B) {
	e, _ := benchEnv(b)
	vlog.SetQuickCheck(false)
	defer vlog.SetQuickCheck(true)
	opt := curation.FreeSetOptions()
	opt.NoCache = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := curation.Run(e.Repos, opt)
		if res.FinalFiles == 0 {
			b.Fatal("no output")
		}
	}
}

// BenchmarkQuickCheck measures the streaming syntax pre-check over every
// scraped Verilog file in the benchmark world (the population the curation
// funnel actually screens); compare with the full parse it replaces on the
// definitive-good path.
func BenchmarkQuickCheck(b *testing.B) {
	e, _ := benchEnv(b)
	var files []string
	var bytes int64
	for i := range e.Repos {
		for _, f := range e.Repos[i].Files {
			if curation.IsVerilogPath(f.Path) {
				files = append(files, f.Content)
				bytes += int64(len(f.Content))
			}
		}
	}
	b.SetBytes(bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		good := 0
		for _, s := range files {
			if vlog.QuickCheck(s) {
				good++
			}
		}
		if good == 0 {
			b.Fatal("no file passed the pre-check")
		}
	}
}
