package freehw

import "testing"

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Scale <= 0 || cfg.EvalN <= 0 {
		t.Fatalf("bad defaults: %+v", cfg)
	}
	if cfg.Bench.Threshold != 0.8 || cfg.Bench.PromptFraction != 0.20 || cfg.Bench.MaxPromptWords != 64 {
		t.Fatalf("benchmark defaults must match the paper: %+v", cfg.Bench)
	}
}

func TestDefaultZooFacade(t *testing.T) {
	zoo := DefaultZoo()
	if len(zoo) != 8 {
		t.Fatalf("the Figure-3 zoo has 8 models, got %d", len(zoo))
	}
	bases, tuned := 0, 0
	for _, s := range zoo {
		if s.Base == "" {
			bases++
		} else {
			tuned++
		}
	}
	if bases != 3 || tuned != 5 {
		t.Fatalf("zoo shape: %d bases, %d tuned", bases, tuned)
	}
}

// The facade must assemble a tiny end-to-end experiment.
func TestFacadeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := DefaultConfig()
	cfg.Scale = 0.02
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.FreeSet.FinalFiles == 0 {
		t.Fatal("empty FreeSet")
	}
}
